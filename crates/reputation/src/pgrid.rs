//! P-Grid: the distributed binary-trie storage of Aberer et al., used by
//! the CIKM 2001 reputation system (the paper's reference \[2\]).
//!
//! Each peer owns a binary *path*; it stores the data items whose keys
//! the path prefixes, and it keeps, for every level `l` of its path, a
//! small list of *references* to peers on the other side of the trie at
//! that level (same first `l` bits, opposite bit `l`). Queries greedily
//! resolve one more key bit per hop, giving `O(log N)` routing messages.
//! Peers sharing the same full path are *replicas* of each other.
//!
//! The grid is built by the emergent pairwise-meeting protocol: peers
//! repeatedly meet at random; peers with identical paths split the key
//! space between them, peers with diverging paths exchange references.
//! Splitting stops at a configured depth so that each leaf retains a
//! replica group.

use crate::record::{BitPath, Complaint, Key};
use serde::{Deserialize, Serialize};
use trustex_netsim::net::{Delivery, Network};
use trustex_netsim::rng::SimRng;
use trustex_netsim::time::SimTime;
use trustex_trust::model::PeerId;

/// Configuration of a [`PGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PGridConfig {
    /// Width of the key space in bits (1..=32).
    pub key_bits: u8,
    /// Maximum trie depth; `2^max_depth` leaves. Choosing
    /// `max_depth ≈ log2(n_peers / replication)` yields the target
    /// replica-group size.
    pub max_depth: u8,
    /// Maximum references kept per level.
    pub max_refs: usize,
    /// Bootstrap meetings per peer (more meetings = better-filled
    /// reference tables).
    pub meetings_per_peer: usize,
}

impl Default for PGridConfig {
    fn default() -> Self {
        PGridConfig {
            key_bits: 16,
            max_depth: 6,
            max_refs: 4,
            meetings_per_peer: 150,
        }
    }
}

impl PGridConfig {
    /// A configuration sized for `n` peers targeting a replica-group size
    /// of roughly `replication` (≥ 1).
    pub fn for_population(n: usize, replication: usize) -> PGridConfig {
        let repl = replication.max(1);
        let leaves = (n / repl).max(1);
        let depth = (usize::BITS - leaves.leading_zeros())
            .saturating_sub(1)
            .clamp(1, 16) as u8;
        PGridConfig {
            max_depth: depth,
            ..PGridConfig::default()
        }
    }

    fn validate(&self) {
        assert!(self.key_bits >= 1 && self.key_bits <= 32);
        assert!(self.max_depth >= 1 && self.max_depth <= self.key_bits);
        assert!(self.max_refs >= 1);
    }
}

/// One peer's trie position, references and local store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerNode {
    id: PeerId,
    path: BitPath,
    /// `refs[l]` = peers with the same first `l` bits and opposite bit
    /// `l`. Indexed by level, length = `path.len()`.
    refs: Vec<Vec<usize>>,
    /// Complaints stored at this peer (deduplicated, ordered).
    store: std::collections::BTreeSet<Complaint>,
}

impl PeerNode {
    /// The peer's identifier.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The peer's trie path.
    pub fn path(&self) -> BitPath {
        self.path
    }

    /// Complaints currently stored at this peer.
    pub fn stored(&self) -> impl ExactSizeIterator<Item = &Complaint> + '_ {
        self.store.iter()
    }

    /// Number of stored complaints.
    pub fn store_len(&self) -> usize {
        self.store.len()
    }
}

/// Receipt for an insert: how it travelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertReceipt {
    /// Routing hops to the first responsible replica.
    pub hops: u32,
    /// Replicas that stored the item (0 = insert failed).
    pub replicas_reached: usize,
    /// Total latency accumulated along the routing path.
    pub latency: SimTime,
}

/// Result of a key query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Routing hops to the first responsible replica.
    pub hops: u32,
    /// Per-replica answers: the complaints each reachable replica holds
    /// for the queried key (dense peer index, complaint list).
    pub answers: Vec<(usize, Vec<Complaint>)>,
    /// Total latency of routing plus the slowest replica round-trip.
    pub latency: SimTime,
}

impl QueryResult {
    /// Whether at least one replica answered.
    pub fn is_resolved(&self) -> bool {
        !self.answers.is_empty()
    }
}

/// The distributed trie.
#[derive(Debug, Clone)]
pub struct PGrid {
    cfg: PGridConfig,
    peers: Vec<PeerNode>,
}

impl PGrid {
    /// Builds a grid of `n` peers by the emergent meeting protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the configuration is invalid.
    pub fn build(n: usize, cfg: PGridConfig, rng: &mut SimRng) -> PGrid {
        assert!(n > 0, "need at least one peer");
        cfg.validate();
        let mut grid = PGrid {
            cfg,
            peers: (0..n)
                .map(|i| PeerNode {
                    id: PeerId(i as u32),
                    path: BitPath::EMPTY,
                    refs: Vec::new(),
                    store: Default::default(),
                })
                .collect(),
        };
        let meetings = cfg.meetings_per_peer.saturating_mul(n) / 2;
        for _ in 0..meetings {
            let a = rng.index(n);
            let b = rng.index(n);
            if a != b {
                grid.meet(a, b, rng);
            }
        }
        grid
    }

    /// The active configuration.
    pub fn config(&self) -> PGridConfig {
        self.cfg
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the grid has no peers (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The peer at a dense index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn peer(&self, index: usize) -> &PeerNode {
        &self.peers[index]
    }

    /// Iterates over all peers.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &PeerNode> + '_ {
        self.peers.iter()
    }

    /// The pairwise-meeting exchange at the heart of P-Grid construction.
    fn meet(&mut self, a: usize, b: usize, rng: &mut SimRng) {
        let (pa, pb) = (self.peers[a].path, self.peers[b].path);
        let l = pa.common_prefix(pb);
        if l == pa.len() && l == pb.len() {
            // Identical paths: split the subspace if depth remains.
            if pa.len() < self.cfg.max_depth {
                let bit_a = rng.chance(0.5);
                self.extend_path(a, bit_a);
                self.extend_path(b, !bit_a);
                self.add_ref(a, l, b);
                self.add_ref(b, l, a);
            }
            // At max depth the two peers are replicas: synchronise stores.
            else {
                let union: std::collections::BTreeSet<Complaint> = self.peers[a]
                    .store
                    .union(&self.peers[b].store)
                    .copied()
                    .collect();
                self.peers[a].store = union.clone();
                self.peers[b].store = union;
            }
        } else if l == pa.len() {
            // a's path is a proper prefix of b's: a specialises to the
            // complement of b's next bit, and they reference each other.
            let bit_b = pb.bit(l);
            self.extend_path(a, !bit_b);
            self.add_ref(a, l, b);
            self.add_ref(b, l, a);
        } else if l == pb.len() {
            let bit_a = pa.bit(l);
            self.extend_path(b, !bit_a);
            self.add_ref(a, l, b);
            self.add_ref(b, l, a);
        } else {
            // Paths diverge at level l: mutual references at that level.
            self.add_ref(a, l, b);
            self.add_ref(b, l, a);
        }
        // Reference gossip: share one random reference per common level so
        // tables fill beyond the direct meeting partners.
        let common = self.peers[a].path.common_prefix(self.peers[b].path);
        for level in 0..common {
            let level = level as usize;
            if let Some(&shared) = self.peers[a]
                .refs
                .get(level)
                .and_then(|v| rng.pick(v.as_slice()))
            {
                self.add_ref(b, level as u8, shared);
            }
            if let Some(&shared) = self.peers[b]
                .refs
                .get(level)
                .and_then(|v| rng.pick(v.as_slice()))
            {
                self.add_ref(a, level as u8, shared);
            }
        }
    }

    fn extend_path(&mut self, peer: usize, bit: bool) {
        let node = &mut self.peers[peer];
        node.path = node.path.child(bit);
        node.refs.push(Vec::new());
    }

    fn add_ref(&mut self, peer: usize, level: u8, target: usize) {
        if peer == target {
            return;
        }
        // The invariant: target's path agrees with peer's on `level` bits
        // and (when long enough) differs at bit `level`.
        let (pp, tp) = (self.peers[peer].path, self.peers[target].path);
        if pp.len() <= level || tp.len() <= level {
            return;
        }
        if pp.common_prefix(tp) != level || pp.bit(level) == tp.bit(level) {
            return;
        }
        let max_refs = self.cfg.max_refs;
        let node = &mut self.peers[peer];
        let level_refs = &mut node.refs[level as usize];
        if !level_refs.contains(&target) {
            if level_refs.len() >= max_refs {
                level_refs.remove(0); // FIFO eviction
            }
            level_refs.push(target);
        }
    }

    /// Dense indices of all peers responsible for `key` (ground truth,
    /// not a network operation).
    pub fn responsible_peers(&self, key: Key) -> Vec<usize> {
        let w = self.cfg.key_bits;
        (0..self.peers.len())
            .filter(|&i| self.peers[i].path.is_prefix_of_key(key, w))
            .collect()
    }

    /// Greedy routing from `origin` towards a peer responsible for `key`.
    ///
    /// Each hop sends one message through `net`; unavailable peers
    /// (per `alive`, `None` = everyone up) are skipped among the level's
    /// references. Returns the responsible peer index, hop count and
    /// accumulated latency, or `None` when routing dead-ends.
    pub fn route(
        &self,
        origin: usize,
        key: Key,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
    ) -> Option<(usize, u32, SimTime)> {
        let w = self.cfg.key_bits;
        let up = |i: usize| alive.is_none_or(|a| a[i]);
        if !up(origin) {
            return None;
        }
        let mut current = origin;
        let mut hops = 0u32;
        let mut latency = SimTime::ZERO;
        let hop_limit = 4 * w as u32 + 8;
        loop {
            let node = &self.peers[current];
            if node.path.is_prefix_of_key(key, w) {
                return Some((current, hops, latency));
            }
            let level = node.path.common_prefix_with_key(key, w) as usize;
            let candidates: Vec<usize> = node
                .refs
                .get(level)
                .map(|v| v.iter().copied().filter(|&i| up(i)).collect())
                .unwrap_or_default();
            let Some(&next) = rng.pick(&candidates) else {
                return None; // dead end: no live reference at this level
            };
            match net.send("route", rng) {
                Delivery::Delivered(d) => latency += d,
                Delivery::Dropped => return None,
            }
            hops += 1;
            if hops > hop_limit {
                return None; // defensive: reference-table inconsistency
            }
            current = next;
        }
    }

    /// The live replica group for a key: every live peer responsible for
    /// it. Peers with shorter paths covering the key count as members —
    /// in a real deployment the landing peer reaches them by continuing
    /// to route within its subtree, which costs the same one message per
    /// member this model charges.
    fn replica_group_for_key(&self, key: Key, alive: Option<&[bool]>) -> Vec<usize> {
        let up = |i: usize| alive.is_none_or(|a| a[i]);
        let w = self.cfg.key_bits;
        (0..self.peers.len())
            .filter(|&i| up(i) && self.peers[i].path.is_prefix_of_key(key, w))
            .collect()
    }

    /// Inserts a complaint under `key`: routes to a responsible replica,
    /// then pushes the item to the live members of its replica group.
    pub fn insert(
        &mut self,
        origin: usize,
        key: Key,
        item: Complaint,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
    ) -> InsertReceipt {
        let Some((landing, hops, latency)) = self.route(origin, key, alive, net, rng) else {
            return InsertReceipt {
                hops: 0,
                replicas_reached: 0,
                latency: SimTime::ZERO,
            };
        };
        let group = self.replica_group_for_key(key, alive);
        let mut reached = 0;
        let mut max_extra = SimTime::ZERO;
        for member in group {
            if member != landing {
                match net.send("replicate", rng) {
                    Delivery::Delivered(d) => max_extra = max_extra.max(d),
                    Delivery::Dropped => continue,
                }
            }
            self.peers[member].store.insert(item);
            reached += 1;
        }
        InsertReceipt {
            hops,
            replicas_reached: reached,
            latency: latency + max_extra,
        }
    }

    /// Queries all live replicas for the items stored under `key`.
    pub fn query(
        &self,
        origin: usize,
        key: Key,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
    ) -> QueryResult {
        let Some((landing, hops, latency)) = self.route(origin, key, alive, net, rng) else {
            return QueryResult {
                hops: 0,
                answers: Vec::new(),
                latency: SimTime::ZERO,
            };
        };
        let w = self.cfg.key_bits;
        let mut answers = Vec::new();
        let mut max_extra = SimTime::ZERO;
        for member in self.replica_group_for_key(key, alive) {
            if member != landing {
                match net.send("replica_query", rng) {
                    Delivery::Delivered(d) => max_extra = max_extra.max(d),
                    Delivery::Dropped => continue,
                }
            }
            let items: Vec<Complaint> = self.peers[member]
                .store
                .iter()
                .filter(|c| {
                    // Only items indexed under the queried key — a peer's
                    // store can hold items for every key in its subspace.
                    crate::record::key_for_peer(c.by, w) == key
                        || crate::record::key_for_peer(c.about, w) == key
                })
                .copied()
                .collect();
            answers.push((member, items));
        }
        QueryResult {
            hops,
            answers,
            latency: latency + max_extra,
        }
    }

    /// Distribution of path depths — diagnostics for the bootstrap.
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.cfg.max_depth as usize + 1];
        for p in &self.peers {
            h[p.path.len() as usize] += 1;
        }
        h
    }

    /// Fraction of peers whose path reached the configured depth.
    pub fn maturity(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        let full = self
            .peers
            .iter()
            .filter(|p| p.path.len() == self.cfg.max_depth)
            .count();
        full as f64 / self.peers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustex_netsim::net::NetConfig;

    fn grid(n: usize, depth: u8, seed: u64) -> (PGrid, SimRng, Network) {
        let mut rng = SimRng::new(seed);
        let cfg = PGridConfig {
            max_depth: depth,
            ..PGridConfig::default()
        };
        let g = PGrid::build(n, cfg, &mut rng);
        (g, rng, Network::new(NetConfig::default()))
    }

    #[test]
    fn bootstrap_reaches_full_depth() {
        let (g, _, _) = grid(128, 5, 1);
        assert!(
            g.maturity() > 0.85,
            "bootstrap should mature: {:?}",
            g.depth_histogram()
        );
        // Residual shallow peers are tolerable (they hold larger
        // subspaces) but must be rare and near-full-depth.
        let hist = g.depth_histogram();
        assert_eq!(hist[..4].iter().sum::<usize>(), 0, "{hist:?}");
    }

    #[test]
    fn replica_groups_nonempty_at_depth() {
        let (g, _, _) = grid(128, 4, 2);
        // 128 peers over 16 leaves: every leaf should have ~8 replicas.
        for leaf in 0..16u32 {
            let count = g
                .iter()
                .filter(|p| {
                    p.path().len() == 4
                        && (0..4).all(|i| p.path().bit(i) == ((leaf >> (3 - i)) & 1 == 1))
                })
                .count();
            assert!(count >= 1, "leaf {leaf:04b} unpopulated");
        }
    }

    #[test]
    fn routing_reaches_responsible_peer() {
        let (g, mut rng, mut net) = grid(128, 5, 3);
        let mut failures = 0;
        for t in 0..200u32 {
            let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
            let origin = rng.index(g.len());
            match g.route(origin, key, None, &mut net, &mut rng) {
                Some((peer, _hops, _)) => {
                    assert!(
                        g.peer(peer)
                            .path()
                            .is_prefix_of_key(key, g.config().key_bits),
                        "landed on non-responsible peer"
                    );
                }
                None => failures += 1,
            }
        }
        assert!(failures <= 4, "too many routing failures: {failures}/200");
    }

    #[test]
    fn routing_cost_is_logarithmic() {
        let (g, mut rng, mut net) = grid(256, 6, 4);
        let mut total_hops = 0u32;
        let mut resolved = 0u32;
        for t in 0..300u32 {
            let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
            let origin = rng.index(g.len());
            if let Some((_, hops, _)) = g.route(origin, key, None, &mut net, &mut rng) {
                total_hops += hops;
                resolved += 1;
            }
        }
        assert!(resolved > 280);
        let mean = total_hops as f64 / resolved as f64;
        assert!(
            mean <= 6.5,
            "mean hops {mean} should be ≈ depth (6) or less"
        );
    }

    #[test]
    fn insert_then_query_roundtrip() {
        let (mut g, mut rng, mut net) = grid(64, 4, 5);
        let subject = PeerId(42);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(1),
            about: subject,
            round: 3,
        };
        let receipt = g.insert(0, key, c, None, &mut net, &mut rng);
        assert!(receipt.replicas_reached >= 1, "insert must reach a replica");
        let result = g.query(17, key, None, &mut net, &mut rng);
        assert!(result.is_resolved());
        assert!(
            result.answers.iter().any(|(_, items)| items.contains(&c)),
            "stored complaint must be retrievable"
        );
    }

    #[test]
    fn insert_replicates_to_group() {
        let (mut g, mut rng, mut net) = grid(64, 3, 6);
        let subject = PeerId(9);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(2),
            about: subject,
            round: 0,
        };
        let receipt = g.insert(1, key, c, None, &mut net, &mut rng);
        // 64 peers over 8 leaves: replica groups of ~8.
        assert!(
            receipt.replicas_reached >= 3,
            "expected multi-replica insert, got {}",
            receipt.replicas_reached
        );
        let holders = g.iter().filter(|p| p.store.contains(&c)).count();
        assert_eq!(holders, receipt.replicas_reached);
    }

    #[test]
    fn query_with_down_replicas_still_resolves() {
        let (mut g, mut rng, mut net) = grid(96, 3, 7);
        let subject = PeerId(5);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(3),
            about: subject,
            round: 1,
        };
        g.insert(0, key, c, None, &mut net, &mut rng);
        // Take down 30% of peers (but keep the origin up).
        let mut alive = vec![true; g.len()];
        for (i, up) in alive.iter_mut().enumerate() {
            if i != 4 && rng.chance(0.3) {
                *up = false;
            }
        }
        let mut resolved = 0;
        for _ in 0..20 {
            let r = g.query(4, key, Some(&alive), &mut net, &mut rng);
            if r.is_resolved() {
                resolved += 1;
            }
        }
        assert!(resolved >= 15, "churn resilience too low: {resolved}/20");
    }

    #[test]
    fn down_origin_cannot_route() {
        let (g, mut rng, mut net) = grid(16, 2, 8);
        let key = crate::record::key_for_peer(PeerId(0), g.config().key_bits);
        let mut alive = vec![true; g.len()];
        alive[3] = false;
        assert!(g.route(3, key, Some(&alive), &mut net, &mut rng).is_none());
    }

    #[test]
    fn message_accounting() {
        let (mut g, mut rng, mut net) = grid(64, 4, 9);
        let key = crate::record::key_for_peer(PeerId(1), g.config().key_bits);
        let c = Complaint {
            by: PeerId(0),
            about: PeerId(1),
            round: 0,
        };
        g.insert(0, key, c, None, &mut net, &mut rng);
        g.query(5, key, None, &mut net, &mut rng);
        assert!(net.total_sent() > 0, "operations must send messages");
        assert!(net.sent("route") > 0 || net.sent("replicate") > 0);
    }

    #[test]
    fn config_for_population() {
        let cfg = PGridConfig::for_population(256, 4);
        assert_eq!(cfg.max_depth, 6); // 256/4 = 64 leaves = depth 6
        let cfg = PGridConfig::for_population(10, 100);
        assert_eq!(cfg.max_depth, 1); // clamped at 1
    }

    #[test]
    fn determinism_same_seed() {
        let (a, _, _) = grid(64, 4, 11);
        let (b, _, _) = grid(64, 4, 11);
        for i in 0..64 {
            assert_eq!(a.peer(i).path(), b.peer(i).path());
        }
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_build_panics() {
        let mut rng = SimRng::new(0);
        PGrid::build(0, PGridConfig::default(), &mut rng);
    }
}
