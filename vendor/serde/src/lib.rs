//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, and the workspace only
//! ever *derives* `Serialize`/`Deserialize` — no code path serializes
//! yet. This crate keeps the derive annotations compiling by providing
//! the two trait names and re-exporting no-op derive macros from the
//! sibling `serde_derive` stub. When a real serialization backend is
//! needed, point the workspace `serde` dependency back at crates.io and
//! everything downstream keeps working unchanged.

/// Marker trait standing in for `serde::Serialize`.
///
/// The no-op derive does not emit an impl; the trait exists only so that
/// `use serde::{Serialize, Deserialize}` resolves in both the type and
/// macro namespaces.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
