//! # trustex-persist — durable evidence for the trust service
//!
//! The paper's trust-management scheme only works if evidence survives
//! peer restarts: a trust service that loses its tables on crash
//! re-opens every whitewashing attack the reputation layer just closed.
//! This crate is the zero-dependency persistence layer of the
//! reproduction — a hand-rolled binary codec (the vendored `serde` is a
//! no-op stand-in, so nothing here goes through a registry dependency):
//!
//! * [`codec`] — little-endian primitive readers/writers
//!   ([`codec::ByteWriter`], [`codec::ByteReader`]) with
//!   allocation-guarded length prefixes.
//! * [`snapshot`] — the versioned container format: a 4-byte magic, a
//!   `u16` format version and tagged, length-prefixed sections each
//!   protected by a CRC-32C trailer (the [`trustex_netsim::crc`]
//!   helper). [`snapshot::Persistable`] is the hook trait the trust
//!   models, the epoch engine and the P-Grid implement.
//! * [`PersistError`] — every corruption class a crash can produce
//!   (truncated tail, bit-flipped section, wrong magic/version, crafted
//!   inconsistency) surfaces as a typed error. Decoding never panics
//!   and never yields a silently-wrong table.
//!
//! ## Format
//!
//! ```text
//! container := magic[4] version:u16 section_count:u32 section*
//! section   := tag[4] payload_len:u64 payload[payload_len] crc32c:u32
//! ```
//!
//! All integers are little-endian; floats travel as `f64::to_bits`. The
//! payload of each section is written by the owning type's
//! [`snapshot::Persistable::encode_state`] and must be consumed exactly
//! by `decode_state` — trailing bytes are an error, not slack.
//!
//! ## Versioning policy
//!
//! [`FORMAT_VERSION`] is bumped on any layout change; readers reject
//! other versions with [`PersistError::UnsupportedVersion`] rather than
//! guessing. Per-section tags let future versions add sections without
//! breaking old ones, but within a version the layout is frozen — the
//! round-trip property tests pin it.
//!
//! ```
//! use trustex_persist::codec::{ByteReader, ByteWriter};
//! use trustex_persist::snapshot::{from_bytes, to_bytes, Persistable};
//! use trustex_persist::PersistError;
//!
//! struct Counter(u64);
//! impl Persistable for Counter {
//!     const TAG: [u8; 4] = *b"CNTR";
//!     fn encode_state(&self, w: &mut ByteWriter) {
//!         w.put_u64(self.0);
//!     }
//!     fn decode_state(r: &mut ByteReader) -> Result<Self, PersistError> {
//!         Ok(Counter(r.take_u64()?))
//!     }
//! }
//!
//! let blob = to_bytes(&Counter(7));
//! assert_eq!(from_bytes::<Counter>(&blob).unwrap().0, 7);
//! let mut corrupt = blob.clone();
//! *corrupt.last_mut().unwrap() ^= 0x40; // flip a CRC bit
//! assert!(from_bytes::<Counter>(&corrupt).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod snapshot;

pub use trustex_netsim::crc::{crc32c, Crc32};

use std::fmt;

/// The current container format version; readers accept only this.
pub const FORMAT_VERSION: u16 = 1;

/// Every way a persisted blob can fail to restore. Decoding is total:
/// corruption of any class maps to one of these variants, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The input ended before the field named by `context` was complete
    /// — the signature of a crash-truncated tail.
    Truncated {
        /// Which field or structure ran out of bytes.
        context: &'static str,
    },
    /// The 4-byte magic does not match the expected container kind.
    BadMagic {
        /// The magic the reader was asked to verify.
        expected: [u8; 4],
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The format version is not the one this build reads.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Version this reader supports ([`FORMAT_VERSION`]).
        supported: u16,
    },
    /// A section's payload does not match its CRC-32C trailer — a bit
    /// flip or partial overwrite inside the section.
    CrcMismatch {
        /// Tag of the damaged section.
        section: [u8; 4],
    },
    /// The container parsed but a required section is absent.
    MissingSection {
        /// Tag of the absent section.
        section: [u8; 4],
    },
    /// The same section tag appeared twice.
    DuplicateSection {
        /// Tag of the repeated section.
        section: [u8; 4],
    },
    /// Bytes remained after the last declared structure — a hallmark of
    /// mismatched length prefixes.
    TrailingBytes {
        /// How many bytes were left unconsumed.
        count: usize,
    },
    /// A structurally valid payload declared something impossible (a
    /// length prefix larger than the remaining input, an enum tag out of
    /// range, a non-finite float where state must be finite).
    Malformed {
        /// What was malformed.
        context: &'static str,
    },
    /// The payload decoded but failed the owning type's semantic
    /// re-validation (e.g. the P-Grid invariant re-check on restore).
    Invalid {
        /// Which invariant failed.
        context: &'static str,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn tag(t: &[u8; 4]) -> String {
            t.iter()
                .map(|&b| {
                    if b.is_ascii_graphic() {
                        (b as char).to_string()
                    } else {
                        format!("\\x{b:02x}")
                    }
                })
                .collect()
        }
        match self {
            PersistError::Truncated { context } => {
                write!(f, "input truncated while reading {context}")
            }
            PersistError::BadMagic { expected, found } => {
                write!(
                    f,
                    "bad magic: expected {}, found {}",
                    tag(expected),
                    tag(found)
                )
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (reader supports {supported})"
                )
            }
            PersistError::CrcMismatch { section } => {
                write!(f, "CRC mismatch in section {}", tag(section))
            }
            PersistError::MissingSection { section } => {
                write!(f, "missing section {}", tag(section))
            }
            PersistError::DuplicateSection { section } => {
                write!(f, "duplicate section {}", tag(section))
            }
            PersistError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the last structure")
            }
            PersistError::Malformed { context } => write!(f, "malformed payload: {context}"),
            PersistError::Invalid { context } => {
                write!(f, "restored state failed validation: {context}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::codec::{ByteReader, ByteWriter};
    pub use crate::snapshot::{from_bytes, to_bytes, Persistable, SnapshotReader, SnapshotWriter};
    pub use crate::{PersistError, FORMAT_VERSION};
}
