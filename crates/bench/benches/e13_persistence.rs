//! E13 bench: composite service snapshot/restore — the warm-start path
//! (encode the overlay + engine, parse it back) against a fixed state.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use trustex_market::experiments::{find, Scale};
use trustex_market::prelude::*;
use trustex_netsim::rng::SimRng;
use trustex_reputation::pgrid::{PGrid, PGridConfig};
use trustex_trust::engine::{TrustEngine, TrustEvent};
use trustex_trust::model::{Conduct, PeerId};

fn service_state(n: usize, events: usize) -> (PGrid, TrustEngine<trustex_trust::beta::BetaTrust>) {
    let mut rng = SimRng::new(0xE13);
    let grid = PGrid::build(n, PGridConfig::for_population(n, 4), &mut rng);
    let engine = TrustEngine::new(trustex_trust::beta::BetaTrust::with_population(n));
    for i in 0..events {
        let subject = PeerId(rng.index(n) as u32);
        let conduct = Conduct::from_honest(!rng.chance(0.3));
        engine.submit(i as u64, TrustEvent::direct(subject, conduct, i as u64));
        if i % 1_000 == 999 {
            engine.publish();
        }
    }
    (grid, engine)
}

fn bench_persistence(c: &mut Criterion) {
    let (grid, engine) = service_state(5_000, 50_000);
    let blob = snapshot_service(&grid, &engine);

    let mut group = c.benchmark_group("e13/persistence");
    group.throughput(Throughput::Bytes(blob.len() as u64));
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(snapshot_service(&grid, &engine)))
    });
    group.bench_function("restore", |b| {
        b.iter(|| {
            black_box(
                restore_service::<trustex_trust::beta::BetaTrust>(&blob)
                    .expect("own snapshot restores"),
            )
        })
    });
    group.finish();

    // The full experiment at smoke scale, as the registry runs it.
    let e13 = find("e13").expect("registered");
    c.bench_function("e13/experiment_smoke", |b| {
        b.iter(|| black_box((e13.run)(Scale::Smoke)))
    });
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
