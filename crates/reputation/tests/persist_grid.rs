//! Differential suite for P-Grid snapshot/restore.
//!
//! The contract: a restored grid is *indistinguishable* from the live
//! one — same directory answers, same routes under identical RNG
//! streams, same stores, same bytes on re-encode — after any history of
//! joins, leaves, repairs and compactions. And decoding is total: byte
//! flips and truncations fail typed, while a tampered-but-checksummed
//! payload either fails typed or yields a grid that still passes every
//! structural invariant (never a silently-wrong arena).

use proptest::prelude::*;
use trustex_netsim::net::{NetConfig, Network};
use trustex_netsim::rng::SimRng;
use trustex_persist::codec::ByteWriter;
use trustex_persist::snapshot::{from_bytes, to_bytes, Persistable, SnapshotWriter};
use trustex_persist::PersistError;
use trustex_reputation::pgrid::{PGrid, PGridConfig};
use trustex_reputation::record::{key_for_peer, Complaint};
use trustex_trust::model::PeerId;

/// Builds a grid and drives it through a random membership / data
/// history so snapshots cover tombstones, renumbering and stores.
fn grid_with_history(
    n: usize,
    depth: u8,
    seed: u64,
    churn: &[bool],
    compact_at: Option<usize>,
) -> (PGrid, SimRng) {
    let mut rng = SimRng::new(seed);
    let cfg = PGridConfig {
        max_depth: depth,
        ..PGridConfig::default()
    };
    let mut grid = PGrid::build(n, cfg, &mut rng);
    let mut net = Network::new(NetConfig::default());
    for (step, &join) in churn.iter().enumerate() {
        if join || grid.live_len() <= 2 {
            grid.join(&mut rng);
        } else {
            let live: Vec<usize> = (0..grid.len()).filter(|&i| grid.is_live(i)).collect();
            grid.leave(live[rng.index(live.len())]);
        }
        if step % 3 == 0 {
            let subject = PeerId(step as u32 * 17 + 1);
            let key = key_for_peer(subject, grid.config().key_bits);
            let item = Complaint {
                by: PeerId(step as u32),
                about: subject,
                round: step as u64,
            };
            let origin = (0..grid.len()).find(|&i| grid.is_live(i)).expect("live");
            grid.insert(origin, key, item, None, &mut net, &mut rng);
        }
        if compact_at == Some(step) {
            grid.compact();
        }
    }
    (grid, rng)
}

/// Restored grid must be observationally identical to the live one.
fn check_grid_round_trip(grid: &PGrid, rng: &SimRng) {
    let blob = to_bytes(grid);
    let restored: PGrid = from_bytes(&blob).expect("own snapshot must restore");
    restored.check_invariants();
    assert_eq!(to_bytes(&restored), blob, "re-encode must be canonical");

    assert_eq!(restored.len(), grid.len());
    assert_eq!(restored.live_len(), grid.live_len());
    assert_eq!(restored.leaf_count(), grid.leaf_count());
    assert_eq!(restored.meetings_held(), grid.meetings_held());
    for peer in 0..grid.len() {
        assert_eq!(restored.is_live(peer), grid.is_live(peer));
        assert_eq!(restored.path(peer), grid.path(peer));
        assert!(restored.stored(peer).eq(grid.stored(peer)), "store {peer}");
    }

    // Identical directory answers and identical routes under identical
    // RNG streams, for a spread of keys.
    let mut net_a = Network::new(NetConfig::default());
    let mut net_b = Network::new(NetConfig::default());
    let mut rng_a = rng.clone();
    let mut rng_b = rng.clone();
    let origin = (0..grid.len()).find(|&i| grid.is_live(i)).expect("live");
    for k in 0..64u32 {
        let key = key_for_peer(PeerId(k * 131 + 7), grid.config().key_bits);
        assert_eq!(
            restored.responsible_peers(key),
            grid.responsible_peers(key),
            "directory diverged for key {key:?}"
        );
        let live = grid.route(origin, key, None, &mut net_a, &mut rng_a);
        let back = restored.route(origin, key, None, &mut net_b, &mut rng_b);
        assert_eq!(
            live.map(|(p, h, _)| (p, h)),
            back.map(|(p, h, _)| (p, h)),
            "route diverged for key {key:?}"
        );
    }
    assert_eq!(rng_a, rng_b, "routing consumed different randomness");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn restored_grid_is_indistinguishable(
        n in 4usize..90,
        depth in 1u8..6,
        seed in 0u64..100_000,
        churn in prop::collection::vec(any::<bool>(), 0..30),
    ) {
        let (grid, rng) = grid_with_history(n, depth, seed, &churn, None);
        check_grid_round_trip(&grid, &rng);
    }

    #[test]
    fn restored_grid_survives_compaction_history(
        n in 4usize..60,
        depth in 1u8..5,
        seed in 0u64..100_000,
        churn in prop::collection::vec(any::<bool>(), 4..24,),
        at in 0usize..20,
    ) {
        let (grid, rng) = grid_with_history(n, depth, seed, &churn, Some(at % churn.len()));
        check_grid_round_trip(&grid, &rng);
    }

    /// A restored grid is a full citizen: it keeps working (joins,
    /// leaves, repair) exactly like the live grid under the same RNG.
    #[test]
    fn restored_grid_evolves_identically(
        n in 4usize..60,
        depth in 1u8..5,
        seed in 0u64..100_000,
        churn in prop::collection::vec(any::<bool>(), 0..16),
    ) {
        let (mut live, rng) = grid_with_history(n, depth, seed, &churn, None);
        let mut restored: PGrid = from_bytes(&to_bytes(&live)).expect("restore");
        let mut rng_a = rng.clone();
        let mut rng_b = rng;
        for _ in 0..4 {
            prop_assert_eq!(live.join(&mut rng_a), restored.join(&mut rng_b));
        }
        let victim = (0..live.len()).find(|&i| live.is_live(i)).expect("live");
        live.leave(victim);
        restored.leave(victim);
        let alive: Vec<bool> = (0..live.len()).map(|i| live.is_live(i)).collect();
        live.repair(&alive, live.len(), &mut rng_a);
        restored.repair(&alive, restored.len(), &mut rng_b);
        live.check_invariants();
        restored.check_invariants();
        prop_assert_eq!(to_bytes(&live), to_bytes(&restored));
    }
}

#[test]
fn grid_corruption_matrix() {
    let churn = [true, false, true, true, false, false, true, false];
    let (grid, _) = grid_with_history(24, 4, 11, &churn, Some(5));
    let blob = to_bytes(&grid);
    for cut in 0..blob.len() {
        assert!(
            from_bytes::<PGrid>(&blob[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
    for i in 0..blob.len() {
        let mut corrupt = blob.clone();
        corrupt[i] ^= 0x20;
        assert!(
            from_bytes::<PGrid>(&corrupt).is_err(),
            "flip of byte {i} must fail"
        );
    }
}

/// Tampering *inside* the payload and re-sealing the checksum gets past
/// the CRC by construction — decode must still be total: every such
/// blob either fails typed or restores to a grid that passes the full
/// structural invariant check. This is the crafted-inconsistency class
/// the restore-time re-validation exists for.
#[test]
fn resealed_payload_tampering_never_yields_a_broken_grid() {
    let churn = [true, true, false, true];
    let (grid, _) = grid_with_history(16, 3, 7, &churn, None);
    let mut payload = ByteWriter::new();
    grid.encode_state(&mut payload);
    let payload = payload.into_bytes();
    let mut rejected = 0usize;
    for i in 0..payload.len() {
        let mut tampered = payload.clone();
        tampered[i] ^= 0x01;
        let mut w = SnapshotWriter::new(*b"TXPS");
        w.raw_section(<PGrid as Persistable>::TAG, tampered);
        match from_bytes::<PGrid>(&w.into_bytes()) {
            Ok(restored) => restored.check_invariants(),
            Err(
                PersistError::Invalid { .. }
                | PersistError::Malformed { .. }
                | PersistError::Truncated { .. }
                | PersistError::TrailingBytes { .. },
            ) => rejected += 1,
            Err(other) => panic!("unexpected error class at byte {i}: {other:?}"),
        }
    }
    // The re-validation must actually be doing work: a large share of
    // single-bit payload tampers (paths, directory members, reference
    // targets, length prefixes) describe an inconsistent arena. Tampers
    // of unvalidated scalars (stamps, rounds, the clock) legitimately
    // restore.
    assert!(
        rejected > payload.len() / 4,
        "only {rejected}/{} tampers rejected — is validate_restored wired?",
        payload.len()
    );
}
