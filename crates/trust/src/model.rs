//! The trust-model abstraction: Figure 1's "trust learning" module.
//!
//! A [`TrustModel`] is held by one evaluating agent. It ingests *direct
//! experiences* (outcomes of the evaluator's own exchanges) and *witness
//! reports* (second-hand outcomes relayed by other community members,
//! possibly lies), and produces [`TrustEstimate`]s: calibrated
//! probabilities that a subject will behave honestly in the next
//! interaction, with an attached confidence.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a peer (community member).
///
/// A dense newtype over `u32`; the market simulation assigns them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PeerId(pub u32);

impl PeerId {
    /// The dense index of this peer.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

impl From<u32> for PeerId {
    fn from(v: u32) -> Self {
        PeerId(v)
    }
}

/// Observed conduct in one interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Conduct {
    /// The subject honoured the exchange.
    Honest,
    /// The subject defected / cheated.
    Dishonest,
}

impl Conduct {
    /// Creates conduct from a boolean (`true` = honest).
    pub fn from_honest(honest: bool) -> Conduct {
        if honest {
            Conduct::Honest
        } else {
            Conduct::Dishonest
        }
    }

    /// Whether the conduct was honest.
    pub fn is_honest(self) -> bool {
        matches!(self, Conduct::Honest)
    }

    /// The opposite conduct (used by lying witnesses).
    pub fn inverted(self) -> Conduct {
        match self {
            Conduct::Honest => Conduct::Dishonest,
            Conduct::Dishonest => Conduct::Honest,
        }
    }
}

/// A probabilistic trust estimate for one subject.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrustEstimate {
    /// Estimated probability the subject behaves honestly next time,
    /// in `[0, 1]`.
    pub p_honest: f64,
    /// Confidence in the estimate, in `[0, 1]`: 0 = pure prior,
    /// approaching 1 with abundant evidence.
    pub confidence: f64,
}

impl TrustEstimate {
    /// The uninformed estimate: maximum ignorance.
    pub const UNKNOWN: TrustEstimate = TrustEstimate {
        p_honest: 0.5,
        confidence: 0.0,
    };

    /// Creates an estimate, clamping both fields into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is NaN.
    pub fn new(p_honest: f64, confidence: f64) -> TrustEstimate {
        assert!(!p_honest.is_nan() && !confidence.is_nan(), "NaN estimate");
        TrustEstimate {
            p_honest: p_honest.clamp(0.0, 1.0),
            confidence: confidence.clamp(0.0, 1.0),
        }
    }

    /// Estimated probability of dishonest behaviour (`1 − p_honest`).
    pub fn p_dishonest(&self) -> f64 {
        1.0 - self.p_honest
    }
}

/// A second-hand report: `witness` claims that `subject` behaved
/// `conduct`-ly in an interaction at `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessReport {
    /// Who relays the observation.
    pub witness: PeerId,
    /// Whom the observation is about.
    pub subject: PeerId,
    /// The claimed conduct.
    pub conduct: Conduct,
    /// Simulation round of the underlying interaction.
    pub round: u64,
}

/// The trust-learning interface (Figure 1, middle module).
///
/// Implementations are owned by a single evaluator; `record_direct` feeds
/// the evaluator's own experiences, `record_witness` feeds relayed ones.
/// `predict` must be callable at any time and must return
/// [`TrustEstimate::UNKNOWN`]-like values for never-seen subjects.
pub trait TrustModel {
    /// Ingests a direct experience with `subject`.
    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, round: u64);

    /// Ingests a witness report (implementations decide how much —
    /// if at all — to discount it).
    fn record_witness(&mut self, report: WitnessReport);

    /// Predicts the subject's behaviour in the next interaction.
    fn predict(&self, subject: PeerId) -> TrustEstimate;

    /// Fills `out[i]` with the estimate for subject `PeerId(i)` — the
    /// batched read path of the accuracy metrics.
    ///
    /// Must be bit-identical to calling [`TrustModel::predict`] per
    /// subject; models with dense evidence tables override it with a
    /// single table sweep that hoists every per-call invariant (priors,
    /// the complaint median, bounds checks) out of the loop.
    fn predict_row_into(&self, out: &mut [TrustEstimate]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.predict(PeerId(i as u32));
        }
    }

    /// Erases every trace of `peer` from the evaluator's state —
    /// evidence about it as a subject *and* any reporter standing it
    /// earned as a witness — as if the evaluator had never met it.
    ///
    /// This is the receiving side of a whitewashing attack: the peer
    /// sheds its identity (leave + rejoin under a fresh id) and the
    /// rest of the community forgets it. Predictions for the peer must
    /// return the cold-start estimate afterwards; predictions for every
    /// other subject must be unaffected (up to lazily cached population
    /// statistics that legitimately included the peer's records). The
    /// default is a no-op for stateless models.
    fn forget_peer(&mut self, peer: PeerId) {
        let _ = peer;
    }

    /// Predicts the subject's behaviour using **direct evidence only**
    /// — the graceful-degradation hook for unreliable networks.
    ///
    /// When the witness quorum is unreachable (message loss, a live
    /// partition), an evaluator must not keep trusting estimates whose
    /// witness component silently reads lost reports as absence of
    /// complaints. Models that keep direct experience separable from
    /// absorbed gossip override this to return `Some` of the
    /// direct-only estimate. The bundled models fold witness-discounted
    /// evidence into one posterior and so return `None`; the market
    /// layer then substitutes its own direct-interaction ledger (see
    /// `trustex-market`'s degraded mode).
    fn predict_direct_only(&self, subject: PeerId) -> Option<TrustEstimate> {
        let _ = subject;
        None
    }

    /// Stable model name for experiment tables.
    fn name(&self) -> &'static str;

    /// Seals lazily cached values before the model is frozen into an
    /// immutable snapshot (see [`crate::engine`]).
    ///
    /// Must not change any prediction — it only forces deferred work
    /// (e.g. the complaint model's dirty median) to happen *now*, on
    /// the write side, so concurrent snapshot readers get pure table
    /// reads. The default is a no-op: most models keep no caches.
    fn prepare_snapshot(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_id_display_index() {
        let p: PeerId = 5u32.into();
        assert_eq!(format!("{p}"), "peer#5");
        assert_eq!(p.index(), 5);
    }

    #[test]
    fn conduct_roundtrip() {
        assert!(Conduct::from_honest(true).is_honest());
        assert!(!Conduct::from_honest(false).is_honest());
        assert_eq!(Conduct::Honest.inverted(), Conduct::Dishonest);
        assert_eq!(Conduct::Dishonest.inverted(), Conduct::Honest);
    }

    #[test]
    fn estimate_clamps() {
        let e = TrustEstimate::new(1.5, -0.2);
        assert_eq!(e.p_honest, 1.0);
        assert_eq!(e.confidence, 0.0);
        assert!((TrustEstimate::new(0.3, 0.5).p_dishonest() - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn estimate_rejects_nan() {
        TrustEstimate::new(f64::NAN, 0.0);
    }

    #[test]
    fn unknown_is_maximum_ignorance() {
        assert_eq!(TrustEstimate::UNKNOWN.p_honest, 0.5);
        assert_eq!(TrustEstimate::UNKNOWN.confidence, 0.0);
    }

    #[test]
    fn direct_only_hook_defaults_to_none_and_is_overridable() {
        struct Mixed;
        impl TrustModel for Mixed {
            fn record_direct(&mut self, _: PeerId, _: Conduct, _: u64) {}
            fn record_witness(&mut self, _: WitnessReport) {}
            fn predict(&self, _: PeerId) -> TrustEstimate {
                TrustEstimate::new(0.9, 1.0)
            }
            fn name(&self) -> &'static str {
                "mixed"
            }
        }
        // A model that cannot separate direct evidence opts out...
        assert_eq!(Mixed.predict_direct_only(PeerId(0)), None);

        struct Separable;
        impl TrustModel for Separable {
            fn record_direct(&mut self, _: PeerId, _: Conduct, _: u64) {}
            fn record_witness(&mut self, _: WitnessReport) {}
            fn predict(&self, _: PeerId) -> TrustEstimate {
                TrustEstimate::new(0.9, 1.0)
            }
            fn predict_direct_only(&self, _: PeerId) -> Option<TrustEstimate> {
                Some(TrustEstimate::new(0.2, 0.5))
            }
            fn name(&self) -> &'static str {
                "separable"
            }
        }
        // ...while one that can reports a direct-only estimate that may
        // legitimately disagree with the gossip-polluted posterior.
        let direct = Separable.predict_direct_only(PeerId(0)).unwrap();
        assert_eq!(direct.p_honest, 0.2);
        // The bundled beta model folds discounted witness evidence into
        // the same posterior, so it declines.
        let beta = crate::beta::BetaTrust::new();
        assert_eq!(beta.predict_direct_only(PeerId(3)), None);
    }
}
