//! "Trades of services in a teamwork environment" (§3): service bundles
//! where some tasks are individually unprofitable, demonstrating how the
//! greedy order sequences negative-surplus tasks first and how much
//! trust a deal needs before it can go ahead.
//!
//! ```text
//! cargo run --release --example teamwork_services
//! ```

use trust_aware_cooperation::core::prelude::*;
use trust_aware_cooperation::core::scheduler::{greedy_order, requirement_profile};
use trust_aware_cooperation::decision::prelude::*;
use trust_aware_cooperation::market::prelude::*;
use trust_aware_cooperation::netsim::rng::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SimRng::new(41);
    let deal = Workload::Teamwork.generate_deal(&mut rng);
    println!("a teamwork service bundle ({} tasks):", deal.goods().len());
    for item in deal.goods().iter() {
        println!(
            "  {}: provider cost {}, client value {}, surplus {}",
            item.id(),
            item.supplier_cost(),
            item.consumer_value(),
            item.surplus()
        );
    }
    println!(
        "price {}, provider profit {}, client surplus {}",
        deal.price(),
        deal.supplier_profit(),
        deal.consumer_surplus()
    );

    // The optimal delivery order and its per-position requirement.
    let order = greedy_order(deal.goods());
    let reqs = requirement_profile(deal.goods(), &order);
    println!("\noptimal service order (requirement = margin needed at that step):");
    for (id, req) in order.iter().zip(&reqs) {
        println!("  {id} -> requires margin {req}");
    }
    println!(
        "minimal total margin: {}",
        min_required_margin(deal.goods())
    );

    // How much mutual trust does this deal need?
    let policy = ExposurePolicy::with_cap(deal.price());
    match min_trust_to_trade(&deal, policy, policy) {
        Some(p) => println!("\nminimal symmetric trust to trade: p_honest ≈ {p:.3}"),
        None => println!("\neven full trust cannot cover this bundle's margin"),
    }

    // Plan with solid mutual trust and execute.
    let inputs = PartyInputs {
        trust_in_opponent: trustex_trust::model::TrustEstimate::new(0.97, 0.9),
        exposure: policy,
        engagement: EngagementRule::default(),
    };
    let nx = plan_exchange(&deal, inputs, inputs, PaymentPolicy::Balanced)?;
    println!(
        "negotiated margins: {} (total {})",
        nx.margins,
        nx.margins.total()
    );
    let outcome = execute(&deal, nx.plan.sequence(), &mut Honest, &mut Honest);
    println!(
        "execution: {:?}; provider {}, client {}",
        outcome.status, outcome.supplier_gain, outcome.consumer_gain
    );
    Ok(())
}
