//! The epoch-swapped trust service engine: lock-free snapshot reads
//! against a consistent view while feedback streams into a pending
//! delta.
//!
//! The simulation harness is batch-shaped (run rounds, print a table),
//! but a production trust service answers interactive queries *while*
//! feedback arrives. This module provides that split:
//!
//! * **Read side** — [`TrustSnapshot`]: an immutable, cheaply clonable
//!   (`Arc`) view of a trust model at one published **epoch**. Readers
//!   never block writers and never touch the complaint model's
//!   dirty-flag machinery: [`TrustEngine::publish`] seals every cached
//!   value (via [`TrustModel::prepare_snapshot`]) before the epoch goes
//!   live, so snapshot predicts are pure table reads.
//! * **Write side** — [`TrustEngine::submit`]: feedback and witness
//!   events accumulate in a pending delta, tagged with a caller-chosen
//!   sequence number. [`TrustEngine::publish`] folds the delta into the
//!   base model **in sequence order** — a pinned fold, so the published
//!   epoch is bit-identical no matter how many threads submitted or in
//!   which interleaving the events arrived — and swaps the new snapshot
//!   in atomically.
//!
//! The architecture mirrors an API-front/replication-back split: the
//! front serves reads from the current epoch, the back batches writes
//! and rotates epochs. Snapshots taken before a publish keep serving
//! the old epoch until dropped; there is no read-your-writes inside an
//! unpublished delta, by design.
//!
//! ```
//! use trustex_trust::engine::{TrustEngine, TrustEvent};
//! use trustex_trust::prelude::*;
//!
//! let engine = TrustEngine::new(BetaTrust::with_population(8));
//! let before = engine.snapshot();
//! engine.submit(0, TrustEvent::direct(PeerId(3), Conduct::Dishonest, 1));
//! // Unpublished events are invisible to every snapshot.
//! assert_eq!(engine.snapshot().predict(PeerId(3)), before.predict(PeerId(3)));
//! engine.publish();
//! assert!(engine.snapshot().predict(PeerId(3)).p_honest < before.predict(PeerId(3)).p_honest);
//! ```

use crate::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use trustex_persist::codec::{ByteReader, ByteWriter};
use trustex_persist::snapshot::Persistable;
use trustex_persist::PersistError;

/// One streamed write: everything the [`TrustModel`] write interface
/// accepts, reified so deltas can be queued, reordered and replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustEvent {
    /// A first-hand experience (`TrustModel::record_direct`).
    Direct {
        /// Whom the experience is about.
        subject: PeerId,
        /// The observed conduct.
        conduct: Conduct,
        /// Simulation round / logical time of the interaction.
        round: u64,
    },
    /// A relayed observation (`TrustModel::record_witness`).
    Witness(WitnessReport),
}

impl TrustEvent {
    /// Shorthand for a direct-experience event.
    pub fn direct(subject: PeerId, conduct: Conduct, round: u64) -> TrustEvent {
        TrustEvent::Direct {
            subject,
            conduct,
            round,
        }
    }

    /// Applies the event to a model.
    pub fn apply<M: TrustModel>(self, model: &mut M) {
        match self {
            TrustEvent::Direct {
                subject,
                conduct,
                round,
            } => model.record_direct(subject, conduct, round),
            TrustEvent::Witness(report) => model.record_witness(report),
        }
    }

    /// Writes the event's wire frame (the payload format of the durable
    /// evidence log and the engine's pending-delta section).
    pub fn encode_into(self, w: &mut ByteWriter) {
        fn put_conduct(w: &mut ByteWriter, c: Conduct) {
            w.put_u8(!c.is_honest() as u8);
        }
        match self {
            TrustEvent::Direct {
                subject,
                conduct,
                round,
            } => {
                w.put_u8(0);
                w.put_u32(subject.0);
                put_conduct(w, conduct);
                w.put_u64(round);
            }
            TrustEvent::Witness(report) => {
                w.put_u8(1);
                w.put_u32(report.witness.0);
                w.put_u32(report.subject.0);
                put_conduct(w, report.conduct);
                w.put_u64(report.round);
            }
        }
    }

    /// Reads one event frame written by [`TrustEvent::encode_into`].
    pub fn decode_from(r: &mut ByteReader) -> Result<TrustEvent, PersistError> {
        fn take_conduct(r: &mut ByteReader) -> Result<Conduct, PersistError> {
            match r.take_u8()? {
                0 => Ok(Conduct::Honest),
                1 => Ok(Conduct::Dishonest),
                _ => Err(PersistError::Malformed {
                    context: "conduct byte out of range",
                }),
            }
        }
        match r.take_u8()? {
            0 => Ok(TrustEvent::Direct {
                subject: PeerId(r.take_u32()?),
                conduct: take_conduct(r)?,
                round: r.take_u64()?,
            }),
            1 => Ok(TrustEvent::Witness(WitnessReport {
                witness: PeerId(r.take_u32()?),
                subject: PeerId(r.take_u32()?),
                conduct: take_conduct(r)?,
                round: r.take_u64()?,
            })),
            _ => Err(PersistError::Malformed {
                context: "trust-event variant out of range",
            }),
        }
    }
}

/// An immutable view of a trust model at one published epoch.
///
/// Cloning is one `Arc` bump; predictions are plain reads of the sealed
/// model and are bit-identical to calling the model directly.
#[derive(Debug, Clone)]
pub struct TrustSnapshot<M> {
    model: Arc<M>,
    epoch: u64,
}

impl<M: TrustModel> TrustSnapshot<M> {
    /// The epoch this snapshot was published at (0 = initial state).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sealed model behind the snapshot.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Predicts `subject`'s behaviour at this epoch.
    pub fn predict(&self, subject: PeerId) -> TrustEstimate {
        self.model.predict(subject)
    }

    /// Fills `out[i]` with the estimate for subject `PeerId(i)` in one
    /// sweep — bit-identical to per-subject [`TrustSnapshot::predict`].
    pub fn predict_row_into(&self, out: &mut [TrustEstimate]) {
        self.model.predict_row_into(out);
    }
}

/// Pending (not yet folded) events plus the authoritative base model.
#[derive(Debug)]
struct WriteSide<M> {
    /// The model with every published event applied.
    base: M,
    /// Events submitted since the last publish: `(seq, event)`.
    pending: Vec<(u64, TrustEvent)>,
}

/// The epoch-swapped snapshot engine around one trust model.
///
/// See the [module docs](self) for the read/write split. The
/// determinism contract: publishing folds pending events in ascending
/// `seq` order, so as long as the event stream assigns distinct
/// sequence numbers (e.g. positions in a deterministic generator
/// stream), the published model is bit-identical regardless of thread
/// count or submission interleaving.
#[derive(Debug)]
pub struct TrustEngine<M> {
    /// The current epoch's snapshot, swapped wholesale at publish. The
    /// lock guards only the pointer swap (readers clone an `Arc` out),
    /// never model data.
    current: RwLock<TrustSnapshot<M>>,
    /// Mirror of the published epoch for lock-free progress checks.
    epoch: AtomicU64,
    write: Mutex<WriteSide<M>>,
}

impl<M: TrustModel + Clone> TrustEngine<M> {
    /// Wraps a model, sealing and publishing it as epoch 0.
    pub fn new(model: M) -> TrustEngine<M> {
        model.prepare_snapshot();
        TrustEngine {
            current: RwLock::new(TrustSnapshot {
                model: Arc::new(model.clone()),
                epoch: 0,
            }),
            epoch: AtomicU64::new(0),
            write: Mutex::new(WriteSide {
                base: model,
                pending: Vec::new(),
            }),
        }
    }

    /// The last published epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current epoch's snapshot (one `Arc` bump under a
    /// momentary pointer-read lock).
    pub fn snapshot(&self) -> TrustSnapshot<M> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Queues one event for the next publish. `seq` pins its position
    /// in the fold; submissions may arrive from any thread in any
    /// order.
    pub fn submit(&self, seq: u64, event: TrustEvent) {
        self.write
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pending
            .push((seq, event));
    }

    /// Queues a batch of events under one lock acquisition.
    pub fn submit_batch(&self, events: impl IntoIterator<Item = (u64, TrustEvent)>) {
        self.write
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pending
            .extend(events);
    }

    /// Number of events awaiting the next publish.
    pub fn pending_len(&self) -> usize {
        self.write
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pending
            .len()
    }

    /// Folds the pending delta into the base model in ascending `seq`
    /// order, seals the result and swaps it in as the next epoch.
    /// Returns the new epoch number. Outstanding snapshots keep serving
    /// their old epoch until dropped.
    pub fn publish(&self) -> u64 {
        let mut write = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let mut pending = std::mem::take(&mut write.pending);
        // Stable on seq: ties (a caller bug — seqs should be distinct)
        // at least keep their per-thread arrival order.
        pending.sort_by_key(|(seq, _)| *seq);
        for (_, event) in pending {
            event.apply(&mut write.base);
        }
        // Seal cached values (e.g. the complaint median) so snapshot
        // readers never fall into a lazy recompute path.
        write.base.prepare_snapshot();
        let next = TrustSnapshot {
            model: Arc::new(write.base.clone()),
            epoch: self.epoch.load(Ordering::Acquire) + 1,
        };
        let epoch = next.epoch;
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = next;
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}

/// The engine persists as its published epoch, the base model (which
/// carries every published event) and the pending seq-tagged delta —
/// the full write-side state. Restoring re-seals the base and publishes
/// it at the saved epoch, so snapshots resume exactly where the saved
/// engine's would, and a subsequent `publish` folds the restored delta
/// identically to the live engine.
impl<M: TrustModel + Clone + Persistable> Persistable for TrustEngine<M> {
    const TAG: [u8; 4] = *b"TENG";

    fn encode_state(&self, w: &mut ByteWriter) {
        let write = self.write.lock().unwrap_or_else(|e| e.into_inner());
        w.put_u64(self.epoch.load(Ordering::Acquire));
        write.base.encode_state(w);
        w.put_len(write.pending.len());
        for &(seq, event) in &write.pending {
            w.put_u64(seq);
            event.encode_into(w);
        }
    }

    fn decode_state(r: &mut ByteReader) -> Result<Self, PersistError> {
        let epoch = r.take_u64()?;
        let base = M::decode_state(r)?;
        // Smallest pending frame: seq (8) + direct event (14).
        let n = r.take_len(22)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let seq = r.take_u64()?;
            pending.push((seq, TrustEvent::decode_from(r)?));
        }
        base.prepare_snapshot();
        Ok(TrustEngine {
            current: RwLock::new(TrustSnapshot {
                model: Arc::new(base.clone()),
                epoch,
            }),
            epoch: AtomicU64::new(epoch),
            write: Mutex::new(WriteSide { base, pending }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beta::BetaTrust;
    use crate::complaints::ComplaintTrust;

    fn dishonest(subject: u32, round: u64) -> TrustEvent {
        TrustEvent::direct(PeerId(subject), Conduct::Dishonest, round)
    }

    #[test]
    fn initial_epoch_is_zero_and_matches_model() {
        let engine = TrustEngine::new(BetaTrust::with_population(4));
        let snap = engine.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(engine.epoch(), 0);
        assert_eq!(snap.predict(PeerId(1)), BetaTrust::new().predict(PeerId(1)));
    }

    #[test]
    fn unpublished_events_are_invisible() {
        let engine = TrustEngine::new(BetaTrust::with_population(4));
        let before = engine.snapshot();
        engine.submit(0, dishonest(2, 0));
        assert_eq!(engine.pending_len(), 1);
        assert_eq!(
            engine.snapshot().predict(PeerId(2)),
            before.predict(PeerId(2))
        );
        engine.publish();
        assert_eq!(engine.pending_len(), 0);
        assert!(engine.snapshot().predict(PeerId(2)).p_honest < before.predict(PeerId(2)).p_honest);
    }

    #[test]
    fn old_snapshots_survive_publishes() {
        let engine = TrustEngine::new(BetaTrust::with_population(4));
        let old = engine.snapshot();
        let p_old = old.predict(PeerId(1));
        for seq in 0..5 {
            engine.submit(seq, dishonest(1, seq));
        }
        engine.publish();
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.predict(PeerId(1)), p_old, "epoch 0 view must not move");
        assert_eq!(engine.snapshot().epoch(), 1);
    }

    #[test]
    fn publish_folds_in_seq_order_not_arrival_order() {
        // Forgetting makes the beta model order-sensitive: an
        // out-of-order late round is discounted. Submitting in scrambled
        // arrival order must reproduce the in-order fold exactly.
        let events: Vec<(u64, TrustEvent)> = (0..20)
            .map(|i| {
                (
                    i,
                    TrustEvent::direct(
                        PeerId((i % 3) as u32),
                        if i % 4 == 0 {
                            Conduct::Dishonest
                        } else {
                            Conduct::Honest
                        },
                        i,
                    ),
                )
            })
            .collect();
        let reference = TrustEngine::new(BetaTrust::with_population(4));
        reference.submit_batch(events.clone());
        reference.publish();

        let scrambled = TrustEngine::new(BetaTrust::with_population(4));
        let mut shuffled = events;
        shuffled.reverse();
        shuffled.swap(3, 11);
        for (seq, event) in shuffled {
            scrambled.submit(seq, event);
        }
        scrambled.publish();

        let mut a = vec![TrustEstimate::UNKNOWN; 4];
        let mut b = vec![TrustEstimate::UNKNOWN; 4];
        reference.snapshot().predict_row_into(&mut a);
        scrambled.snapshot().predict_row_into(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn epochs_count_publishes() {
        let engine = TrustEngine::new(BetaTrust::new());
        assert_eq!(engine.publish(), 1);
        assert_eq!(engine.publish(), 2);
        assert_eq!(engine.epoch(), 2);
        assert_eq!(engine.snapshot().epoch(), 2);
    }

    #[test]
    fn complaint_snapshot_is_sealed() {
        // After publish, the snapshot's median cache must be clean: a
        // predict must not need the lazy recompute (observable only
        // indirectly — the predict equals the direct model's and the
        // row sweep agrees with per-subject predicts).
        let engine = TrustEngine::new(ComplaintTrust::with_population(8));
        for seq in 0..6 {
            engine.submit(seq, dishonest(3, seq));
        }
        engine.publish();
        let snap = engine.snapshot();
        let mut row = vec![TrustEstimate::UNKNOWN; 8];
        snap.predict_row_into(&mut row);
        for (i, est) in row.iter().enumerate() {
            assert_eq!(*est, snap.predict(PeerId(i as u32)), "subject {i}");
        }
        assert!(snap.predict(PeerId(3)).p_honest < snap.predict(PeerId(1)).p_honest);
    }

    #[test]
    fn witness_events_reach_the_model() {
        let engine = TrustEngine::new(ComplaintTrust::with_population(8));
        engine.submit(
            0,
            TrustEvent::Witness(WitnessReport {
                witness: PeerId(1),
                subject: PeerId(2),
                conduct: Conduct::Dishonest,
                round: 0,
            }),
        );
        engine.publish();
        let (received, _) = engine.snapshot().model().tally(PeerId(2));
        assert_eq!(received, 0.5, "witness complaint lands at witness weight");
    }
}
