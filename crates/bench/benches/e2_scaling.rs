//! E2 bench: scheduler runtime scaling — the quadratic Sandholm-style
//! construction vs the `O(n log n)` greedy, across instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use trustex_core::goods::Goods;
use trustex_core::money::Money;
use trustex_core::safety::SafetyMargins;
use trustex_core::scheduler::{greedy_order, sandholm_order, subset_dp_order};
use trustex_netsim::rng::SimRng;

fn instance(n: usize, seed: u64) -> Goods {
    let mut rng = SimRng::new(seed);
    Goods::new(
        (0..n)
            .map(|_| {
                (
                    Money::from_f64(rng.range_f64(0.5, 20.0)),
                    Money::from_f64(rng.range_f64(0.5, 30.0)),
                )
            })
            .collect(),
    )
    .expect("non-empty")
}

fn wide_margins(goods: &Goods) -> SafetyMargins {
    SafetyMargins::new(
        goods.total_supplier_cost() + goods.total_consumer_value(),
        Money::ZERO,
    )
    .expect("non-negative")
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/greedy");
    for n in [16usize, 64, 256, 1024, 4096] {
        let goods = instance(n, 2);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &goods, |b, g| {
            b.iter(|| black_box(greedy_order(g)))
        });
    }
    group.finish();
}

fn bench_sandholm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/sandholm");
    for n in [16usize, 64, 256, 1024] {
        let goods = instance(n, 3);
        let margins = wide_margins(&goods);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &goods, |b, g| {
            b.iter(|| black_box(sandholm_order(g, margins).expect("feasible")))
        });
    }
    group.finish();
}

fn bench_subset_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/subset_dp");
    for n in [8usize, 12, 16, 20] {
        let goods = instance(n, 4);
        let margins = wide_margins(&goods);
        group.bench_with_input(BenchmarkId::from_parameter(n), &goods, |b, g| {
            b.iter(|| black_box(subset_dp_order(g, margins).expect("size ok")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_sandholm, bench_subset_dp);
criterion_main!(benches);
