//! Quickstart: schedule and execute one trust-aware exchange.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use trust_aware_cooperation::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A supplier sells three items; both parties know both value
    // functions (supplier cost, consumer value) — the paper's setting.
    let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.5)])?;
    let deal = Deal::with_split_surplus(goods)?;
    println!(
        "deal: {} items, price {}, supplier profit {}, consumer surplus {}",
        deal.goods().len(),
        deal.price(),
        deal.supplier_profit(),
        deal.consumer_surplus()
    );

    // Sandholm's impossibility: no fully safe sequence exists because
    // every item costs the supplier something.
    let needed = min_required_margin(deal.goods());
    println!("fully safe exchange possible: {}", needed.is_zero());
    println!("minimal total margin required: {needed}");

    // Trust-aware relaxation: partners who tolerate a little exposure
    // (backed by trust) can trade. Grant each side half the requirement
    // plus a hair more.
    let margins = SafetyMargins::symmetric(needed.scale(0.5) + Money::from_micros(1))?;
    let plan = schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)?;
    println!("\nscheduled sequence ({} steps):", plan.sequence().len());
    for (i, action) in plan.sequence().actions().iter().enumerate() {
        println!("  {i:2}. {action}");
    }
    println!(
        "worst exposures along the way: consumer-tempted {} / supplier-tempted {}",
        plan.max_consumer_temptation(),
        plan.max_supplier_temptation()
    );

    // Execute between an honest supplier and an honest consumer.
    let outcome = execute(&deal, plan.sequence(), &mut Honest, &mut Honest);
    println!("\nhonest execution: {:?}", outcome.status);
    println!(
        "gains: supplier {}, consumer {}",
        outcome.supplier_gain, outcome.consumer_gain
    );

    // A schedule-aware rational defector with zero outside stake cannot
    // profit beyond the margin we granted.
    let mut defector = RationalDefector { stake: Money::ZERO };
    let outcome = execute(&deal, plan.sequence(), &mut Honest, &mut defector);
    println!("\nagainst a zero-stake defector: {:?}", outcome.status);
    println!(
        "defector haul {} (bounded by ε_s = {})",
        outcome.consumer_gain - deal.consumer_surplus().min(outcome.consumer_gain),
        margins.eps_supplier()
    );
    Ok(())
}
