//! Exchange state and the gain/temptation calculus.
//!
//! During an exchange the observable state is the set of delivered items
//! and the money paid so far. From it, both parties' *defection gains*,
//! *completion gains* and *temptations* are derived — the quantities the
//! paper's safety conditions (§2) constrain.
//!
//! Sign conventions (all quantities are [`Money`], positive = better for
//! the named party):
//!
//! * consumer defect gain  = `Vc(D) − m`
//! * consumer complete gain = `Vc(G) − P`
//! * consumer temptation   = defect − complete = `R − (Vc(G) − Vc(D))`
//!   with `R = P − m` the outstanding payment
//! * supplier defect gain  = `m − Vs(D)`
//! * supplier complete gain = `P − Vs(G)`
//! * supplier temptation   = `(Vs(G) − Vs(D)) − R`
//!
//! A positive consumer temptation means the consumer is currently
//! *indebted* (has received more value than the outstanding balance
//! justifies) and would gain by walking away; symmetrically for the
//! supplier. The fully safe window of the paper keeps both ≤ 0.

use crate::deal::Deal;
use crate::goods::ItemId;
use crate::money::Money;
use serde::{Deserialize, Serialize};

/// The two exchange roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// The party delivering goods.
    Supplier,
    /// The party paying money.
    Consumer,
}

impl Role {
    /// The opposite role.
    pub fn other(self) -> Role {
        match self {
            Role::Supplier => Role::Consumer,
            Role::Consumer => Role::Supplier,
        }
    }

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Role::Supplier => "supplier",
            Role::Consumer => "consumer",
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Mutable state of one exchange in progress.
///
/// # Examples
///
/// ```
/// use trustex_core::deal::Deal;
/// use trustex_core::goods::Goods;
/// use trustex_core::money::Money;
/// use trustex_core::state::ExchangeState;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use trustex_core::state::Progress;
/// let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0)])?;
/// let deal = Deal::new(goods, Money::from_units(6))?;
/// let mut p = Progress::new(&deal);
/// assert_eq!(p.view().outstanding(), Money::from_units(6));
/// p.pay(Money::from_units(4))?;
/// let id = deal.goods().ids().next().unwrap();
/// p.deliver(id)?;
/// assert_eq!(p.state().delivered_count(), 1);
/// assert_eq!(p.view().outstanding(), Money::from_units(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExchangeState {
    delivered: Vec<bool>,
    delivered_count: usize,
    delivered_cost: Money,
    delivered_value: Money,
    paid: Money,
}

/// Error applying an action to an [`ExchangeState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// The item was already delivered.
    AlreadyDelivered(ItemId),
    /// The item id does not belong to the deal's goods.
    UnknownItem(ItemId),
    /// Payments must be strictly positive.
    NonPositivePayment(Money),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::AlreadyDelivered(id) => write!(f, "{id} was already delivered"),
            StateError::UnknownItem(id) => write!(f, "{id} does not belong to this deal"),
            StateError::NonPositivePayment(m) => {
                write!(f, "payment must be positive, got {m}")
            }
        }
    }
}

impl std::error::Error for StateError {}

impl ExchangeState {
    /// The initial state of a deal: nothing delivered, nothing paid.
    pub fn new(deal: &Deal) -> ExchangeState {
        ExchangeState {
            delivered: vec![false; deal.goods().len()],
            delivered_count: 0,
            delivered_cost: Money::ZERO,
            delivered_value: Money::ZERO,
            paid: Money::ZERO,
        }
    }

    /// Number of items delivered so far.
    pub fn delivered_count(&self) -> usize {
        self.delivered_count
    }

    /// Whether the given item has been delivered.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the deal this state was
    /// created from.
    pub fn is_delivered(&self, id: ItemId) -> bool {
        self.delivered[id.index()]
    }

    /// Money paid so far (`m`).
    pub fn paid(&self) -> Money {
        self.paid
    }

    /// `Vs(D)`: supplier cost of the delivered subset.
    pub fn delivered_cost(&self) -> Money {
        self.delivered_cost
    }

    /// `Vc(D)`: consumer value of the delivered subset.
    pub fn delivered_value(&self) -> Money {
        self.delivered_value
    }

    /// Whether every item has been delivered.
    pub fn all_delivered(&self) -> bool {
        self.delivered_count == self.delivered.len()
    }

    /// Applies a delivery, updating the cached subset sums.
    ///
    /// The state only records flags and sums; the caller supplies the
    /// item's cost and value. Most users should go through [`Progress`],
    /// which pairs the state with its deal and looks the item up itself.
    #[doc(hidden)]
    pub fn apply_delivery_raw(
        &mut self,
        id: ItemId,
        cost: Money,
        value: Money,
    ) -> Result<(), StateError> {
        let idx = id.index();
        if idx >= self.delivered.len() {
            return Err(StateError::UnknownItem(id));
        }
        if self.delivered[idx] {
            return Err(StateError::AlreadyDelivered(id));
        }
        self.delivered[idx] = true;
        self.delivered_count += 1;
        self.delivered_cost += cost;
        self.delivered_value += value;
        Ok(())
    }

    /// Applies a payment of `amount`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NonPositivePayment`] when `amount ≤ 0`.
    /// Overpaying beyond `P` is permitted by the state (the verifier
    /// rejects it at the sequence level where the deal is known).
    pub fn apply_payment(&mut self, amount: Money) -> Result<(), StateError> {
        if !amount.is_positive() {
            return Err(StateError::NonPositivePayment(amount));
        }
        self.paid += amount;
        Ok(())
    }

    /// The delivered flags, aligned with item ids.
    pub fn delivered_flags(&self) -> &[bool] {
        &self.delivered
    }
}

/// A view pairing an [`ExchangeState`] with its [`Deal`], exposing the
/// derived economic quantities.
#[derive(Debug, Clone, Copy)]
pub struct StateView<'a> {
    deal: &'a Deal,
    state: &'a ExchangeState,
}

impl<'a> StateView<'a> {
    /// Creates a view over `state` in the context of `deal`.
    ///
    /// # Panics
    ///
    /// Panics if the state was created for a different number of items.
    pub fn new(deal: &'a Deal, state: &'a ExchangeState) -> StateView<'a> {
        assert_eq!(
            deal.goods().len(),
            state.delivered.len(),
            "state does not belong to this deal"
        );
        StateView { deal, state }
    }

    /// The underlying deal.
    pub fn deal(&self) -> &'a Deal {
        self.deal
    }

    /// The underlying state.
    pub fn state(&self) -> &'a ExchangeState {
        self.state
    }

    /// Outstanding payment `R = P − m` (negative if overpaid).
    pub fn outstanding(&self) -> Money {
        self.deal.price() - self.state.paid
    }

    /// Remaining supplier cost `Vs(G) − Vs(D)`.
    pub fn remaining_cost(&self) -> Money {
        self.deal.goods().total_supplier_cost() - self.state.delivered_cost
    }

    /// Remaining consumer value `Vc(G) − Vc(D)`.
    pub fn remaining_value(&self) -> Money {
        self.deal.goods().total_consumer_value() - self.state.delivered_value
    }

    /// Consumer's gain from defecting now: `Vc(D) − m`.
    pub fn consumer_defect_gain(&self) -> Money {
        self.state.delivered_value - self.state.paid
    }

    /// Consumer's gain from completing: `Vc(G) − P`.
    pub fn consumer_complete_gain(&self) -> Money {
        self.deal.consumer_surplus()
    }

    /// Supplier's gain from defecting now: `m − Vs(D)`.
    pub fn supplier_defect_gain(&self) -> Money {
        self.state.paid - self.state.delivered_cost
    }

    /// Supplier's gain from completing: `P − Vs(G)`.
    pub fn supplier_complete_gain(&self) -> Money {
        self.deal.supplier_profit()
    }

    /// Consumer temptation `T_c = defect − complete = R − (Vc(G) − Vc(D))`.
    pub fn consumer_temptation(&self) -> Money {
        self.consumer_defect_gain() - self.consumer_complete_gain()
    }

    /// Supplier temptation `T_s = (Vs(G) − Vs(D)) − R`.
    pub fn supplier_temptation(&self) -> Money {
        self.supplier_defect_gain() - self.supplier_complete_gain()
    }

    /// Temptation of the given role.
    pub fn temptation(&self, role: Role) -> Money {
        match role {
            Role::Supplier => self.supplier_temptation(),
            Role::Consumer => self.consumer_temptation(),
        }
    }

    /// What the named party loses (vs. completing) if the *other* party
    /// defects right now. Equal to the negation of the other party's
    /// temptation — the identity the paper's bounds exploit.
    pub fn exposure(&self, role: Role) -> Money {
        -self.temptation(role.other())
    }
}

/// Convenience: pairs a deal with an owned state and applies actions.
pub mod progress {
    use super::*;

    /// An exchange in progress: deal + owned state.
    #[derive(Debug, Clone)]
    pub struct Progress<'a> {
        deal: &'a Deal,
        state: ExchangeState,
    }

    impl<'a> Progress<'a> {
        /// Starts a fresh exchange over `deal`.
        pub fn new(deal: &'a Deal) -> Progress<'a> {
            Progress {
                deal,
                state: ExchangeState::new(deal),
            }
        }

        /// The deal being exchanged.
        pub fn deal(&self) -> &'a Deal {
            self.deal
        }

        /// Read access to the state.
        pub fn state(&self) -> &ExchangeState {
            &self.state
        }

        /// A derived-quantities view of the current state.
        pub fn view(&self) -> StateView<'_> {
            StateView::new(self.deal, &self.state)
        }

        /// Delivers an item.
        ///
        /// # Errors
        ///
        /// [`StateError::UnknownItem`] / [`StateError::AlreadyDelivered`].
        pub fn deliver(&mut self, id: ItemId) -> Result<(), StateError> {
            let item = self
                .deal
                .goods()
                .get(id.index())
                .ok_or(StateError::UnknownItem(id))?;
            self.state
                .apply_delivery_raw(id, item.supplier_cost(), item.consumer_value())
        }

        /// Pays an amount.
        ///
        /// # Errors
        ///
        /// [`StateError::NonPositivePayment`].
        pub fn pay(&mut self, amount: Money) -> Result<(), StateError> {
            self.state.apply_payment(amount)
        }

        /// Whether the exchange is complete: all delivered and fully paid.
        pub fn is_complete(&self) -> bool {
            self.state.all_delivered() && self.view().outstanding().is_zero()
        }
    }
}

pub use progress::Progress;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goods::Goods;

    fn deal() -> Deal {
        // Vs(G) = 6, Vc(G) = 12, P = 9.
        let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]).unwrap();
        Deal::new(goods, Money::from_units(9)).unwrap()
    }

    #[test]
    fn initial_state_quantities() {
        let d = deal();
        let st = ExchangeState::new(&d);
        let v = StateView::new(&d, &st);
        assert_eq!(v.outstanding(), Money::from_units(9));
        assert_eq!(v.remaining_cost(), Money::from_units(6));
        assert_eq!(v.remaining_value(), Money::from_units(12));
        // T_c(0) = P - Vc(G) = -3 ; T_s(0) = Vs(G) - P = -3.
        assert_eq!(v.consumer_temptation(), Money::from_units(-3));
        assert_eq!(v.supplier_temptation(), Money::from_units(-3));
        assert_eq!(v.consumer_defect_gain(), Money::ZERO);
        assert_eq!(v.supplier_defect_gain(), Money::ZERO);
    }

    #[test]
    fn temptation_identity_with_exposure() {
        let d = deal();
        let mut p = Progress::new(&d);
        p.pay(Money::from_units(4)).unwrap();
        let ids: Vec<ItemId> = d.goods().ids().collect();
        p.deliver(ids[0]).unwrap();
        let v = p.view();
        assert_eq!(v.exposure(Role::Consumer), -v.supplier_temptation());
        assert_eq!(v.exposure(Role::Supplier), -v.consumer_temptation());
    }

    #[test]
    fn delivery_updates_sums() {
        let d = deal();
        let mut p = Progress::new(&d);
        let ids: Vec<ItemId> = d.goods().ids().collect();
        p.deliver(ids[1]).unwrap();
        assert_eq!(p.state().delivered_cost(), Money::from_units(1));
        assert_eq!(p.state().delivered_value(), Money::from_units(4));
        assert!(p.state().is_delivered(ids[1]));
        assert!(!p.state().is_delivered(ids[0]));
        assert_eq!(p.state().delivered_count(), 1);
    }

    #[test]
    fn double_delivery_rejected() {
        let d = deal();
        let mut p = Progress::new(&d);
        let id = d.goods().ids().next().unwrap();
        p.deliver(id).unwrap();
        assert_eq!(p.deliver(id), Err(StateError::AlreadyDelivered(id)));
    }

    #[test]
    fn unknown_item_rejected() {
        let d = deal();
        let mut p = Progress::new(&d);
        let bogus = ItemId(99);
        assert_eq!(p.deliver(bogus), Err(StateError::UnknownItem(bogus)));
    }

    #[test]
    fn non_positive_payment_rejected() {
        let d = deal();
        let mut p = Progress::new(&d);
        assert!(matches!(
            p.pay(Money::ZERO),
            Err(StateError::NonPositivePayment(_))
        ));
        assert!(matches!(
            p.pay(Money::from_units(-1)),
            Err(StateError::NonPositivePayment(_))
        ));
    }

    #[test]
    fn consumer_temptation_rises_with_delivery() {
        let d = deal();
        let mut p = Progress::new(&d);
        let before = p.view().consumer_temptation();
        let id = d.goods().ids().next().unwrap(); // Vc = 5
        p.deliver(id).unwrap();
        let after = p.view().consumer_temptation();
        assert_eq!(after - before, Money::from_units(5));
    }

    #[test]
    fn supplier_temptation_rises_with_payment() {
        let d = deal();
        let mut p = Progress::new(&d);
        let before = p.view().supplier_temptation();
        p.pay(Money::from_units(2)).unwrap();
        let after = p.view().supplier_temptation();
        assert_eq!(after - before, Money::from_units(2));
    }

    #[test]
    fn completion_detection() {
        let d = deal();
        let mut p = Progress::new(&d);
        for id in d.goods().ids().collect::<Vec<_>>() {
            p.deliver(id).unwrap();
        }
        assert!(!p.is_complete());
        p.pay(Money::from_units(9)).unwrap();
        assert!(p.is_complete());
        // At completion both temptations are zero.
        let v = p.view();
        assert_eq!(v.consumer_temptation(), Money::ZERO);
        assert_eq!(v.supplier_temptation(), Money::ZERO);
    }

    #[test]
    fn role_helpers() {
        assert_eq!(Role::Supplier.other(), Role::Consumer);
        assert_eq!(Role::Consumer.other(), Role::Supplier);
        assert_eq!(Role::Supplier.to_string(), "supplier");
        assert_eq!(Role::Consumer.label(), "consumer");
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn view_mismatched_state_panics() {
        let d = deal();
        let other_goods = Goods::from_f64_pairs(&[(1.0, 2.0)]).unwrap();
        let other_deal = Deal::new(other_goods, Money::from_units(1)).unwrap();
        let st = ExchangeState::new(&other_deal);
        let _ = StateView::new(&d, &st);
    }
}
