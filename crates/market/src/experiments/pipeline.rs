//! E0 — the Figure 1 reference model, end to end, with the *real*
//! decentralised substrate: complaints live in P-Grid (not in local
//! gossip), trust is computed from queried tallies with the CIKM-style
//! complaint metric, decisions run the §3 pipeline, and outcomes feed
//! complaints back into the grid.

use super::Scale;
use crate::strategy::{plan, Strategy};
use crate::table::Table;
use crate::workload::Workload;
use trustex_agents::profile::PopulationMix;
use trustex_core::execute::{execute, ExchangeStatus};
use trustex_core::policy::PaymentPolicy;
use trustex_core::state::Role;
use trustex_netsim::rng::SimRng;
use trustex_reputation::system::{ReputationConfig, ReputationSystem};
use trustex_trust::confidence::evidence_confidence;
use trustex_trust::model::{PeerId, TrustEstimate};

/// Maps a queried complaint tally to a trust estimate, using the
/// complaint-product heuristic of `trustex-trust::complaints` with a
/// median taken over this round's queried products.
fn tally_to_estimate(received: u64, filed: u64, median_product: f64) -> TrustEstimate {
    let product = (received as f64 + 1.0) * (filed as f64 + 1.0);
    let ratio = product / (4.0 * median_product.max(1.0));
    let p = 1.0 / (1.0 + ratio * ratio);
    TrustEstimate::new(p, evidence_confidence((received + filed) as f64))
}

/// E0 — *Figure R1*: the complete feedback loop of the paper's reference
/// model on the decentralised substrate. Reported per phase of the run:
/// completion rate, honest losses and P-Grid messages per session.
pub fn e0_pipeline(scale: Scale) -> Table {
    let n = scale.pick(48, 150);
    let rounds: usize = scale.pick(6, 30);
    let sessions_per_round = scale.pick(30, 100);

    let mut rng = SimRng::new(0xE0);
    let mix = PopulationMix::standard(0.3, 0.0);
    let profiles = mix.sample(n, &mut rng);
    let mut reputation = ReputationSystem::new(n, ReputationConfig::default(), 0xE0D);

    let mut table = Table::new(
        "E0: reference-model pipeline (complaints in P-Grid, 30% dishonest)",
        &[
            "phase",
            "completion",
            "honest_losses/sess",
            "declines",
            "grid_msgs/sess",
        ],
    );

    let phase_len = rounds.div_ceil(3);
    let mut median_product = 1.0f64;
    for phase in 0..3 {
        let mut completed = 0usize;
        let mut declined = 0usize;
        let mut sessions = 0usize;
        let mut honest_losses = 0.0;
        let msgs_before = reputation.network().total_sent();
        let mut products_seen: Vec<f64> = Vec::new();

        for round_in_phase in 0..phase_len {
            let round = (phase * phase_len + round_in_phase) as u64;
            for _ in 0..sessions_per_round {
                sessions += 1;
                let supplier = PeerId(rng.index(n) as u32);
                let consumer = loop {
                    let c = PeerId(rng.index(n) as u32);
                    if c != supplier {
                        break c;
                    }
                };
                // Reputation management: query both parties' tallies.
                let consumer_tally = reputation.query_tally(supplier, consumer, None);
                let supplier_tally = reputation.query_tally(consumer, supplier, None);
                let s_trust = match consumer_tally {
                    Some(t) => {
                        let est = tally_to_estimate(t.received, t.filed, median_product);
                        products_seen.push((t.received as f64 + 1.0) * (t.filed as f64 + 1.0));
                        est
                    }
                    None => TrustEstimate::UNKNOWN,
                };
                let c_trust = match supplier_tally {
                    Some(t) => {
                        let est = tally_to_estimate(t.received, t.filed, median_product);
                        products_seen.push((t.received as f64 + 1.0) * (t.filed as f64 + 1.0));
                        est
                    }
                    None => TrustEstimate::UNKNOWN,
                };

                // Decision making + scheduling.
                let deal = Workload::FileSharing.generate_deal(&mut rng);
                let sequence = match plan(
                    Strategy::TrustAware,
                    &deal,
                    s_trust,
                    c_trust,
                    PaymentPolicy::Lazy,
                ) {
                    Ok(seq) => seq,
                    Err(_) => {
                        declined += 1;
                        continue;
                    }
                };

                // Exchange execution against true behaviours.
                let mut rng_s = rng.fork(1);
                let mut rng_c = rng.fork(2);
                let s_behavior = profiles[supplier.index()].exchange;
                let c_behavior = profiles[consumer.index()].exchange;
                let outcome = {
                    let mut so = s_behavior.oracle(round, &mut rng_s);
                    let mut co = c_behavior.oracle(round, &mut rng_c);
                    execute(&deal, &sequence, &mut so, &mut co)
                };
                for (agent, gain) in [
                    (supplier, outcome.supplier_gain.as_f64()),
                    (consumer, outcome.consumer_gain.as_f64()),
                ] {
                    if profiles[agent.index()].exchange.is_fundamentally_honest() && gain < 0.0 {
                        honest_losses += -gain;
                    }
                }

                // Feedback: wronged parties file complaints into the grid.
                match outcome.status {
                    ExchangeStatus::Completed => completed += 1,
                    ExchangeStatus::Aborted { by, .. } => {
                        let (victim, offender) = match by {
                            Role::Supplier => (consumer, supplier),
                            Role::Consumer => (supplier, consumer),
                        };
                        reputation.file_complaint(victim, offender, round, None);
                    }
                }
            }
        }
        // Update the population median product from this phase's queries.
        if !products_seen.is_empty() {
            let mid = products_seen.len() / 2;
            let (_, median, _) = products_seen.select_nth_unstable_by(mid, f64::total_cmp);
            median_product = *median;
        }
        let msgs = reputation.network().total_sent() - msgs_before;
        table.push_row(vec![
            format!("phase-{}", phase + 1).into(),
            (completed as f64 / sessions as f64).into(),
            (honest_losses / sessions as f64).into(),
            declined.into(),
            (msgs as f64 / sessions as f64).into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn num(cell: &Cell) -> f64 {
        match cell {
            Cell::Num(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(t) => panic!("expected number, got {t}"),
        }
    }

    #[test]
    fn pipeline_learns_across_phases() {
        let t = e0_pipeline(Scale::Smoke);
        assert_eq!(t.rows().len(), 3);
        let first = &t.rows()[0];
        let last = &t.rows()[2];
        // Honest losses per session fall as complaints accumulate.
        assert!(
            num(&last[2]) <= num(&first[2]) + 1e-9,
            "losses must not grow: {} -> {}",
            num(&first[2]),
            num(&last[2])
        );
        // The pipeline keeps trading.
        assert!(num(&last[1]) > 0.2, "completion collapsed: {last:?}");
    }

    #[test]
    fn pipeline_uses_the_grid() {
        let t = e0_pipeline(Scale::Smoke);
        for row in t.rows() {
            assert!(num(&row[4]) > 0.0, "grid messages must flow: {row:?}");
        }
    }

    #[test]
    fn tally_estimate_properties() {
        let clean = tally_to_estimate(0, 0, 1.0);
        let dirty = tally_to_estimate(10, 0, 1.0);
        assert!(clean.p_honest > dirty.p_honest);
        assert!(
            clean.confidence < dirty.confidence,
            "complaints are evidence"
        );
        let liar = tally_to_estimate(0, 10, 1.0);
        assert!(liar.p_honest < clean.p_honest);
    }
}
