//! Accuracy and welfare metrics for the experiment suite.

use crate::population::Community;
use trustex_trust::model::PeerId;

/// The ground-truth cooperation probability of every agent, in id order.
///
/// The truth vector is static over a simulation run, so per-round metric
/// tracking computes it once and reuses the buffer via
/// [`trust_mae_with_truth`] instead of re-deriving it every round.
pub fn cooperation_truth(community: &Community) -> Vec<f64> {
    community
        .agent_ids()
        .map(|a| community.true_cooperation_prob(a))
        .collect()
}

/// Mean absolute error of trust estimates against ground truth, averaged
/// over all ordered evaluator→subject pairs (`evaluator ≠ subject`).
pub fn trust_mae(community: &Community) -> f64 {
    trust_mae_with_truth(community, &cooperation_truth(community))
}

/// [`trust_mae`] against a precomputed [`cooperation_truth`] buffer —
/// the allocation-free variant the per-round tracking hot path uses.
///
/// # Panics
///
/// Panics if `truth.len()` differs from the community size.
pub fn trust_mae_with_truth(community: &Community, truth: &[f64]) -> f64 {
    assert_eq!(truth.len(), community.len(), "truth buffer size mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for e in community.agent_ids() {
        for s in community.agent_ids() {
            if e == s {
                continue;
            }
            let est = community.predict(e, s).p_honest;
            total += (est - truth[s.index()]).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Probability that a uniformly chosen (honest, dishonest) subject pair
/// is ranked correctly by a uniformly chosen evaluator (ties count ½) —
/// an AUC analogue. Returns 0.5 when either class is empty.
pub fn rank_accuracy(community: &Community) -> f64 {
    let ids: Vec<PeerId> = community.agent_ids().collect();
    let honest: Vec<PeerId> = ids
        .iter()
        .copied()
        .filter(|a| community.is_honest(*a))
        .collect();
    let dishonest: Vec<PeerId> = ids
        .iter()
        .copied()
        .filter(|a| !community.is_honest(*a))
        .collect();
    if honest.is_empty() || dishonest.is_empty() {
        return 0.5;
    }
    // Per evaluator this is a Mann–Whitney U count: sort the honest
    // scores once, then locate every dishonest score by binary search —
    // O(n log n) per evaluator instead of the naive O(honest × dishonest)
    // pair walk (O(n³) overall). Wins/ties are tallied in exact half-unit
    // integers, so the result is bit-identical to the naive pair sum.
    let mut half_units: u64 = 0;
    let mut count: u64 = 0;
    let mut honest_scores: Vec<f64> = Vec::with_capacity(honest.len());
    for &e in &ids {
        honest_scores.clear();
        honest_scores.extend(
            honest
                .iter()
                .filter(|&&h| h != e)
                .map(|&h| community.predict(e, h).p_honest),
        );
        if honest_scores.is_empty() {
            continue;
        }
        honest_scores.sort_unstable_by(f64::total_cmp);
        for &d in &dishonest {
            if d == e {
                continue;
            }
            let pd = community.predict(e, d).p_honest;
            let below = honest_scores.partition_point(|&ph| ph.total_cmp(&pd).is_lt());
            let below_or_tied = honest_scores.partition_point(|&ph| ph.total_cmp(&pd).is_le());
            let wins = (honest_scores.len() - below_or_tied) as u64;
            let ties = (below_or_tied - below) as u64;
            half_units += 2 * wins + ties;
            count += honest_scores.len() as u64;
        }
    }
    if count == 0 {
        0.5
    } else {
        half_units as f64 / (2 * count) as f64
    }
}

/// Fraction of evaluator→subject pairs classified correctly by
/// thresholding `p_honest` at 0.5 against the binary ground truth.
pub fn decision_accuracy(community: &Community) -> f64 {
    let ids: Vec<PeerId> = community.agent_ids().collect();
    let mut correct = 0usize;
    let mut count = 0usize;
    for &e in &ids {
        for &s in &ids {
            if e == s {
                continue;
            }
            let predicted_honest = community.predict(e, s).p_honest >= 0.5;
            if predicted_honest == community.is_honest(s) {
                correct += 1;
            }
            count += 1;
        }
    }
    if count == 0 {
        1.0
    } else {
        correct as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::ModelKind;
    use trustex_agents::profile::PopulationMix;
    use trustex_netsim::rng::SimRng;
    use trustex_trust::model::Conduct;

    fn community(dishonest: f64) -> Community {
        let mut rng = SimRng::new(1);
        Community::new(
            10,
            &PopulationMix::standard(dishonest, 0.0),
            ModelKind::Beta,
            &mut rng,
        )
    }

    /// Feed every evaluator perfect direct experience about everyone.
    fn educate(c: &mut Community, reps: u64) {
        let ids: Vec<PeerId> = c.agent_ids().collect();
        for &e in &ids {
            for &s in &ids {
                if e == s {
                    continue;
                }
                let conduct = Conduct::from_honest(c.is_honest(s));
                for r in 0..reps {
                    c.record_direct(e, s, conduct, r);
                }
            }
        }
    }

    #[test]
    fn mae_decreases_with_evidence() {
        let mut c = community(0.5);
        let cold = trust_mae(&c);
        assert!((cold - 0.5).abs() < 1e-9, "uninformed prior is 0.5 off");
        educate(&mut c, 10);
        let warm = trust_mae(&c);
        assert!(warm < 0.2, "educated community MAE: {warm}");
    }

    #[test]
    fn rank_accuracy_perfect_after_education() {
        let mut c = community(0.5);
        assert!(
            (rank_accuracy(&c) - 0.5).abs() < 1e-9,
            "cold start is a coin flip"
        );
        educate(&mut c, 5);
        assert_eq!(rank_accuracy(&c), 1.0);
    }

    #[test]
    fn decision_accuracy_after_education() {
        let mut c = community(0.3);
        educate(&mut c, 10);
        assert!(decision_accuracy(&c) > 0.95);
    }

    /// The naive O(n³) pair walk the sorted implementation replaced.
    fn rank_accuracy_naive(community: &Community) -> f64 {
        let ids: Vec<PeerId> = community.agent_ids().collect();
        let honest: Vec<PeerId> = ids
            .iter()
            .copied()
            .filter(|a| community.is_honest(*a))
            .collect();
        let dishonest: Vec<PeerId> = ids
            .iter()
            .copied()
            .filter(|a| !community.is_honest(*a))
            .collect();
        if honest.is_empty() || dishonest.is_empty() {
            return 0.5;
        }
        let mut score = 0.0;
        let mut count = 0usize;
        for &e in &ids {
            for &h in &honest {
                if h == e {
                    continue;
                }
                for &d in &dishonest {
                    if d == e {
                        continue;
                    }
                    let ph = community.predict(e, h).p_honest;
                    let pd = community.predict(e, d).p_honest;
                    score += if ph > pd {
                        1.0
                    } else if ph == pd {
                        0.5
                    } else {
                        0.0
                    };
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.5
        } else {
            score / count as f64
        }
    }

    /// The Mann–Whitney formulation must agree bit-for-bit with the
    /// naive pair walk on cold, partially educated and fully educated
    /// communities (ties, mixed scores, saturated scores).
    #[test]
    fn rank_accuracy_matches_naive_reference() {
        for dishonest_frac in [0.3, 0.5, 0.7] {
            let mut c = community(dishonest_frac);
            assert_eq!(rank_accuracy(&c), rank_accuracy_naive(&c));
            // Partially educate: only some evaluators learn, leaving a
            // mix of informative scores and tied cold priors.
            let ids: Vec<PeerId> = c.agent_ids().collect();
            for &e in ids.iter().take(4) {
                for &s in &ids {
                    if e != s {
                        let conduct = Conduct::from_honest(c.is_honest(s));
                        c.record_direct(e, s, conduct, 0);
                    }
                }
            }
            assert_eq!(rank_accuracy(&c), rank_accuracy_naive(&c));
            educate(&mut c, 7);
            assert_eq!(rank_accuracy(&c), rank_accuracy_naive(&c));
        }
    }

    #[test]
    fn trust_mae_with_truth_matches_allocating_path() {
        let mut c = community(0.4);
        educate(&mut c, 3);
        let truth = cooperation_truth(&c);
        assert_eq!(trust_mae(&c), trust_mae_with_truth(&c, &truth));
    }

    #[test]
    #[should_panic(expected = "truth buffer size mismatch")]
    fn trust_mae_with_wrong_buffer_panics() {
        let c = community(0.4);
        trust_mae_with_truth(&c, &[0.5; 3]);
    }

    #[test]
    fn degenerate_populations() {
        let c = community(0.0);
        assert_eq!(rank_accuracy(&c), 0.5, "no dishonest class");
        // Decision accuracy with the cold prior (0.5 ≥ 0.5 ⇒ honest)
        // is exactly the honest fraction.
        assert!((decision_accuracy(&c) - 1.0).abs() < 1e-9);
    }
}
