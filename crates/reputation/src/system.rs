//! The reputation-management facade: Figure 1's left-hand module.
//!
//! [`ReputationSystem`] wires the P-Grid storage, the network model and
//! the replica-resolution logic into the interface the market simulation
//! consumes: *file a complaint*, *fetch a peer's complaint tally*. A
//! fraction of storage peers can be configured to lie
//! ([`StorageBehavior`]), and availability can be driven by a churn
//! timeline.
//!
//! A [`CentralStore`] with identical semantics but a single trusted
//! server is provided as the idealised baseline for the ablations.

use crate::pgrid::{PGrid, PGridConfig};
use crate::record::{key_for_peer, Complaint};
use crate::resolve::{majority_vote, StorageBehavior};
use serde::{Deserialize, Serialize};
use trustex_netsim::net::{NetConfig, Network};
use trustex_netsim::rng::SimRng;
use trustex_trust::model::PeerId;

/// A resolved complaint tally for one subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TallyReport {
    /// Accepted complaints *about* the subject.
    pub received: u64,
    /// Accepted complaints *filed by* the subject.
    pub filed: u64,
    /// Replicas that answered the query.
    pub replicas: usize,
    /// Routing hops of the query.
    pub hops: u32,
}

/// Configuration of a [`ReputationSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ReputationConfig {
    /// P-Grid parameters.
    pub grid: PGridConfig,
    /// Network parameters (latency/drops) for storage traffic.
    pub net: NetConfig,
}

/// Decentralised complaint storage over P-Grid.
#[derive(Debug, Clone)]
pub struct ReputationSystem {
    grid: PGrid,
    net: Network,
    rng: SimRng,
    behavior: Vec<StorageBehavior>,
}

impl ReputationSystem {
    /// Builds the system for `n_peers` storage peers.
    pub fn new(n_peers: usize, cfg: ReputationConfig, seed: u64) -> ReputationSystem {
        let mut rng = SimRng::new(seed);
        let grid = PGrid::build(n_peers, cfg.grid, &mut rng);
        ReputationSystem {
            grid,
            net: Network::new(cfg.net),
            rng,
            behavior: vec![StorageBehavior::Faithful; n_peers],
        }
    }

    /// Sets the storage behaviour of one peer (dense index).
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range.
    pub fn set_storage_behavior(&mut self, peer: usize, behavior: StorageBehavior) {
        self.behavior[peer] = behavior;
    }

    /// Makes a random `fraction` of storage peers liars (half
    /// suppressors, half fabricators).
    pub fn corrupt_fraction(&mut self, fraction: f64) {
        let n = self.grid.len();
        let k = ((n as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let chosen = self.rng.sample_indices(n, k);
        for (j, i) in chosen.into_iter().enumerate() {
            self.behavior[i] = if j % 2 == 0 {
                StorageBehavior::Suppressor
            } else {
                StorageBehavior::Fabricator(2)
            };
        }
    }

    /// The underlying grid (read access for diagnostics).
    pub fn grid(&self) -> &PGrid {
        &self.grid
    }

    /// The network's message counters.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Files complaint `by → about`; stores it under both peers' keys
    /// (so both `cr` and `cf` queries find it). Returns how many replica
    /// stores accepted it in total.
    pub fn file_complaint(
        &mut self,
        by: PeerId,
        about: PeerId,
        round: u64,
        alive: Option<&[bool]>,
    ) -> usize {
        let w = self.grid.config().key_bits;
        let item = Complaint { by, about, round };
        let origin = (by.index()) % self.grid.len();
        let mut reached = 0;
        for key in [key_for_peer(about, w), key_for_peer(by, w)] {
            let receipt = self
                .grid
                .insert(origin, key, item, alive, &mut self.net, &mut self.rng);
            reached += receipt.replicas_reached;
        }
        reached
    }

    /// Queries the complaint tally of `subject` on behalf of `querier`,
    /// resolving replica answers by majority vote. `None` when routing
    /// failed entirely.
    pub fn query_tally(
        &mut self,
        querier: PeerId,
        subject: PeerId,
        alive: Option<&[bool]>,
    ) -> Option<TallyReport> {
        let w = self.grid.config().key_bits;
        let key = key_for_peer(subject, w);
        let origin = querier.index() % self.grid.len();
        let result = self
            .grid
            .query(origin, key, alive, &mut self.net, &mut self.rng);
        if !result.is_resolved() {
            return None;
        }
        // Apply storage behaviours to each replica's raw answer.
        let mut shaped: Vec<Vec<Complaint>> = Vec::with_capacity(result.answers.len());
        for (member, raw) in &result.answers {
            match self.behavior[*member] {
                StorageBehavior::Faithful => shaped.push(raw.clone()),
                StorageBehavior::Suppressor => shaped.push(Vec::new()),
                StorageBehavior::Fabricator(k) => {
                    // Collusive fabrication: every fabricator invents the
                    // *same* fake complaints about the subject, so the
                    // fakes can reach quorum when liars dominate — the
                    // strongest attack majority voting must face.
                    let mut v = raw.clone();
                    for j in 0..k {
                        v.push(Complaint {
                            by: PeerId(3_000_000_000 + j as u32),
                            about: subject,
                            round: 0,
                        });
                    }
                    shaped.push(v);
                }
            }
        }
        let accepted = majority_vote(&shaped);
        let received = accepted.iter().filter(|c| c.about == subject).count() as u64;
        let filed = accepted.iter().filter(|c| c.by == subject).count() as u64;
        Some(TallyReport {
            received,
            filed,
            replicas: result.answers.len(),
            hops: result.hops,
        })
    }
}

/// The idealised centralized baseline: one trusted store, no network.
#[derive(Debug, Clone, Default)]
pub struct CentralStore {
    complaints: Vec<Complaint>,
}

impl CentralStore {
    /// Creates an empty store.
    pub fn new() -> CentralStore {
        CentralStore::default()
    }

    /// Files a complaint.
    pub fn file_complaint(&mut self, by: PeerId, about: PeerId, round: u64) {
        self.complaints.push(Complaint { by, about, round });
    }

    /// Exact complaint tally for a subject.
    pub fn tally(&self, subject: PeerId) -> (u64, u64) {
        let received = self
            .complaints
            .iter()
            .filter(|c| c.about == subject)
            .count() as u64;
        let filed = self.complaints.iter().filter(|c| c.by == subject).count() as u64;
        (received, filed)
    }

    /// Number of stored complaints.
    pub fn len(&self) -> usize {
        self.complaints.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.complaints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(n: usize, seed: u64) -> ReputationSystem {
        let cfg = ReputationConfig {
            grid: PGridConfig {
                max_depth: 4,
                ..PGridConfig::default()
            },
            ..ReputationConfig::default()
        };
        ReputationSystem::new(n, cfg, seed)
    }

    #[test]
    fn file_and_query_roundtrip() {
        let mut sys = system(64, 1);
        let subject = PeerId(7);
        for v in 20..26 {
            let reached = sys.file_complaint(PeerId(v), subject, 0, None);
            assert!(reached >= 1, "complaint must reach storage");
        }
        let tally = sys.query_tally(PeerId(3), subject, None).expect("resolves");
        assert_eq!(tally.received, 6);
        assert_eq!(tally.filed, 0);
        assert!(tally.replicas >= 1);
    }

    #[test]
    fn filed_complaints_visible_under_filer_key() {
        let mut sys = system(64, 2);
        let liar = PeerId(9);
        for v in 30..35 {
            sys.file_complaint(liar, PeerId(v), 0, None);
        }
        let tally = sys.query_tally(PeerId(1), liar, None).expect("resolves");
        assert_eq!(tally.filed, 5);
        assert_eq!(tally.received, 0);
    }

    #[test]
    fn minority_liars_filtered_by_majority() {
        let mut sys = system(96, 3);
        let subject = PeerId(11);
        for v in 40..44 {
            sys.file_complaint(PeerId(v), subject, 0, None);
        }
        // Corrupt 20% of storage peers: answers still resolve correctly.
        sys.corrupt_fraction(0.20);
        let mut exact = 0;
        for q in 0..10u32 {
            if let Some(t) = sys.query_tally(PeerId(50 + q), subject, None) {
                if t.received == 4 && t.filed == 0 {
                    exact += 1;
                }
            }
        }
        assert!(
            exact >= 7,
            "majority voting should survive 20% liars: {exact}/10"
        );
    }

    #[test]
    fn heavy_corruption_breaks_tallies() {
        let mut sys = system(96, 4);
        let subject = PeerId(11);
        for v in 40..44 {
            sys.file_complaint(PeerId(v), subject, 0, None);
        }
        sys.corrupt_fraction(1.0);
        // With every storage peer lying, no query returns the true tally.
        let mut exact = 0;
        for q in 0..10u32 {
            if let Some(t) = sys.query_tally(PeerId(50 + q), subject, None) {
                if t.received == 4 {
                    exact += 1;
                }
            }
        }
        assert_eq!(exact, 0, "fully corrupted storage cannot answer correctly");
    }

    #[test]
    fn central_store_exact() {
        let mut cs = CentralStore::new();
        assert!(cs.is_empty());
        cs.file_complaint(PeerId(1), PeerId(2), 0);
        cs.file_complaint(PeerId(3), PeerId(2), 1);
        cs.file_complaint(PeerId(2), PeerId(4), 2);
        assert_eq!(cs.tally(PeerId(2)), (2, 1));
        assert_eq!(cs.tally(PeerId(9)), (0, 0));
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn query_counts_messages() {
        let mut sys = system(64, 5);
        sys.file_complaint(PeerId(1), PeerId(2), 0, None);
        let before = sys.network().total_sent();
        sys.query_tally(PeerId(3), PeerId(2), None);
        assert!(sys.network().total_sent() >= before, "queries are counted");
    }

    #[test]
    fn availability_mask_respected() {
        let mut sys = system(64, 6);
        let subject = PeerId(5);
        sys.file_complaint(PeerId(1), subject, 0, None);
        let alive = vec![false; 64];
        // Everyone down: no origin can route.
        assert!(sys.query_tally(PeerId(2), subject, Some(&alive)).is_none());
    }
}
