//! The versioned snapshot container and the [`Persistable`] hook trait.
//!
//! A container is a 4-byte magic, a `u16` format version, a `u32`
//! section count, then that many tagged sections:
//!
//! ```text
//! container := magic[4] version:u16 section_count:u32 section*
//! section   := tag[4] payload_len:u64 payload[payload_len] crc32c:u32
//! ```
//!
//! [`SnapshotWriter`] builds one; [`SnapshotReader::parse`] validates the
//! whole container up front — magic, version, every section's length and
//! CRC-32C, duplicate tags, trailing bytes — before any payload is
//! decoded, so a caller that gets a reader back knows the bytes are
//! structurally sound and can then decode sections in any order.
//!
//! Single-value blobs (one type, one section) go through the [`to_bytes`]
//! / [`from_bytes`] shorthand with the generic `TXPS` magic; composite
//! snapshots (the e13 warm-start image, the evidence log) pick their own
//! magic and assemble sections explicitly.

use crate::codec::{ByteReader, ByteWriter};
use crate::{PersistError, FORMAT_VERSION};
use trustex_netsim::crc::crc32c;

/// Magic for single-value containers written by [`to_bytes`].
pub const VALUE_MAGIC: [u8; 4] = *b"TXPS";

/// A type whose state can be written to and restored from a tagged
/// snapshot section.
///
/// `decode_state` must consume the payload exactly (the framework calls
/// [`ByteReader::finish`] afterwards) and must re-validate everything a
/// hand-crafted payload could get wrong: range-check configs, reject
/// non-finite floats, re-check structural invariants. A successful decode
/// must behave identically to the encoded instance.
pub trait Persistable: Sized {
    /// The 4-byte section tag identifying this type in a container.
    const TAG: [u8; 4];

    /// Writes the complete state into `w`.
    fn encode_state(&self, w: &mut ByteWriter);

    /// Rebuilds an instance from a payload produced by `encode_state`.
    fn decode_state(r: &mut ByteReader) -> Result<Self, PersistError>;
}

/// Builds a snapshot container section by section.
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    magic: [u8; 4],
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts an empty container with the given magic.
    pub fn new(magic: [u8; 4]) -> SnapshotWriter {
        SnapshotWriter {
            magic,
            sections: Vec::new(),
        }
    }

    /// Appends a section holding `value`, tagged with its [`Persistable::TAG`].
    pub fn section<T: Persistable>(&mut self, value: &T) -> &mut Self {
        let mut w = ByteWriter::new();
        value.encode_state(&mut w);
        self.raw_section(T::TAG, w.into_bytes())
    }

    /// Appends a section with an explicit tag and pre-encoded payload.
    /// Used when one container carries several instances of the same type
    /// (e.g. the four model tables of a composite snapshot).
    pub fn raw_section(&mut self, tag: [u8; 4], payload: Vec<u8>) -> &mut Self {
        self.sections.push((tag, payload));
        self
    }

    /// Serialises the container: header, then every section with its
    /// length prefix and CRC-32C trailer.
    pub fn into_bytes(self) -> Vec<u8> {
        let body: usize = self.sections.iter().map(|(_, p)| 4 + 8 + p.len() + 4).sum();
        let mut w = ByteWriter::with_capacity(4 + 2 + 4 + body);
        w.put_bytes(&self.magic);
        w.put_u16(FORMAT_VERSION);
        w.put_u32(self.sections.len() as u32);
        for (tag, payload) in &self.sections {
            w.put_bytes(tag);
            w.put_u64(payload.len() as u64);
            w.put_bytes(payload);
            w.put_u32(crc32c(payload));
        }
        w.into_bytes()
    }
}

/// A parsed, fully validated snapshot container.
///
/// Construction via [`SnapshotReader::parse`] checks the header and every
/// section frame (length, CRC, tag uniqueness, no trailing bytes);
/// payload *content* is validated later by each type's
/// [`Persistable::decode_state`].
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    sections: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Parses and structurally validates a container with the expected magic.
    pub fn parse(bytes: &'a [u8], magic: [u8; 4]) -> Result<SnapshotReader<'a>, PersistError> {
        let mut r = ByteReader::new(bytes);
        let found = r.take_tag("magic")?;
        if found != magic {
            return Err(PersistError::BadMagic {
                expected: magic,
                found,
            });
        }
        let version = r.take_u16()?;
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = r.take_u32()? as usize;
        // Each section frame is at least tag + len + crc = 16 bytes.
        if count > r.remaining() / 16 {
            return Err(PersistError::Malformed {
                context: "section count exceeds remaining input",
            });
        }
        let mut sections: Vec<([u8; 4], &'a [u8])> = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = r.take_tag("section tag")?;
            let len = r.take_u64()?;
            if len > r.remaining() as u64 {
                return Err(PersistError::Truncated {
                    context: "section payload",
                });
            }
            let payload = r.take_bytes(len as usize, "section payload")?;
            let stored_crc = r.take_u32()?;
            if crc32c(payload) != stored_crc {
                return Err(PersistError::CrcMismatch { section: tag });
            }
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(PersistError::DuplicateSection { section: tag });
            }
            sections.push((tag, payload));
        }
        r.finish()?;
        Ok(SnapshotReader { sections })
    }

    /// Tags present, in container order.
    pub fn tags(&self) -> impl Iterator<Item = [u8; 4]> + '_ {
        self.sections.iter().map(|(t, _)| *t)
    }

    /// Whether a section with this tag is present.
    pub fn has_section(&self, tag: [u8; 4]) -> bool {
        self.sections.iter().any(|(t, _)| *t == tag)
    }

    /// The raw payload of a section, or [`PersistError::MissingSection`].
    pub fn raw_section(&self, tag: [u8; 4]) -> Result<&'a [u8], PersistError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or(PersistError::MissingSection { section: tag })
    }

    /// Decodes the section tagged [`Persistable::TAG`] as a `T`.
    pub fn decode<T: Persistable>(&self) -> Result<T, PersistError> {
        self.decode_tag(T::TAG)
    }

    /// Decodes the section with an explicit tag as a `T` (the counterpart
    /// of [`SnapshotWriter::raw_section`] for repeated types).
    pub fn decode_tag<T: Persistable>(&self, tag: [u8; 4]) -> Result<T, PersistError> {
        let payload = self.raw_section(tag)?;
        let mut r = ByteReader::new(payload);
        let value = T::decode_state(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

/// Serialises one value into a single-section `TXPS` container.
pub fn to_bytes<T: Persistable>(value: &T) -> Vec<u8> {
    let mut w = SnapshotWriter::new(VALUE_MAGIC);
    w.section(value);
    w.into_bytes()
}

/// Restores a value written by [`to_bytes`].
pub fn from_bytes<T: Persistable>(bytes: &[u8]) -> Result<T, PersistError> {
    SnapshotReader::parse(bytes, VALUE_MAGIC)?.decode::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Pair {
        a: u64,
        b: f64,
    }

    impl Persistable for Pair {
        const TAG: [u8; 4] = *b"PAIR";
        fn encode_state(&self, w: &mut ByteWriter) {
            w.put_u64(self.a);
            w.put_f64(self.b);
        }
        fn decode_state(r: &mut ByteReader) -> Result<Self, PersistError> {
            Ok(Pair {
                a: r.take_u64()?,
                b: r.take_finite_f64()?,
            })
        }
    }

    fn sample() -> Pair {
        Pair { a: 42, b: -1.25 }
    }

    #[test]
    fn single_value_round_trip() {
        let blob = to_bytes(&sample());
        assert_eq!(from_bytes::<Pair>(&blob).unwrap(), sample());
    }

    #[test]
    fn multi_section_round_trip_any_order() {
        let mut w = SnapshotWriter::new(*b"TEST");
        let mut pw = ByteWriter::new();
        sample().encode_state(&mut pw);
        w.raw_section(*b"ONE\0", pw.as_bytes().to_vec());
        w.raw_section(*b"TWO\0", pw.into_bytes());
        let blob = w.into_bytes();
        let r = SnapshotReader::parse(&blob, *b"TEST").unwrap();
        assert_eq!(r.tags().count(), 2);
        // Decode in reverse container order — sections are addressable.
        assert_eq!(r.decode_tag::<Pair>(*b"TWO\0").unwrap(), sample());
        assert_eq!(r.decode_tag::<Pair>(*b"ONE\0").unwrap(), sample());
        assert!(!r.has_section(*b"NOPE"));
        assert_eq!(
            r.decode_tag::<Pair>(*b"NOPE"),
            Err(PersistError::MissingSection { section: *b"NOPE" })
        );
    }

    #[test]
    fn wrong_magic_is_typed() {
        let blob = to_bytes(&sample());
        assert_eq!(
            SnapshotReader::parse(&blob, *b"OTHR").unwrap_err(),
            PersistError::BadMagic {
                expected: *b"OTHR",
                found: VALUE_MAGIC,
            }
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let mut blob = to_bytes(&sample());
        blob[4] = blob[4].wrapping_add(1); // version lives right after the magic
        assert_eq!(
            from_bytes::<Pair>(&blob).unwrap_err(),
            PersistError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION,
            }
        );
    }

    #[test]
    fn every_truncation_point_is_an_error() {
        let blob = to_bytes(&sample());
        for cut in 0..blob.len() {
            let res = from_bytes::<Pair>(&blob[..cut]);
            assert!(res.is_err(), "truncation at {cut} must fail, got {res:?}");
        }
    }

    #[test]
    fn every_single_byte_flip_is_an_error_or_detected() {
        let blob = to_bytes(&sample());
        for i in 0..blob.len() {
            for bit in 0..8 {
                let mut corrupt = blob.clone();
                corrupt[i] ^= 1 << bit;
                let res = from_bytes::<Pair>(&corrupt);
                assert!(
                    res.is_err(),
                    "flip of bit {bit} at byte {i} must be detected, got {res:?}"
                );
            }
        }
    }

    #[test]
    fn duplicate_sections_are_rejected() {
        let mut pw = ByteWriter::new();
        sample().encode_state(&mut pw);
        let payload = pw.into_bytes();
        let mut w = SnapshotWriter::new(*b"TEST");
        w.raw_section(*b"PAIR", payload.clone());
        w.raw_section(*b"PAIR", payload);
        assert_eq!(
            SnapshotReader::parse(&w.into_bytes(), *b"TEST").unwrap_err(),
            PersistError::DuplicateSection { section: *b"PAIR" }
        );
    }

    #[test]
    fn trailing_bytes_after_sections_are_rejected() {
        let mut blob = to_bytes(&sample());
        blob.push(0);
        assert_eq!(
            from_bytes::<Pair>(&blob).unwrap_err(),
            PersistError::TrailingBytes { count: 1 }
        );
    }

    #[test]
    fn payload_must_be_consumed_exactly() {
        // Hand-build a container whose PAIR payload has one extra byte
        // (with a matching CRC, so the frame itself is sound).
        let mut pw = ByteWriter::new();
        sample().encode_state(&mut pw);
        pw.put_u8(0xFF);
        let mut w = SnapshotWriter::new(VALUE_MAGIC);
        w.raw_section(Pair::TAG, pw.into_bytes());
        assert_eq!(
            from_bytes::<Pair>(&w.into_bytes()).unwrap_err(),
            PersistError::TrailingBytes { count: 1 }
        );
    }

    #[test]
    fn absurd_section_count_does_not_allocate() {
        let mut w = ByteWriter::new();
        w.put_bytes(&VALUE_MAGIC);
        w.put_u16(FORMAT_VERSION);
        w.put_u32(u32::MAX);
        assert!(matches!(
            SnapshotReader::parse(w.as_bytes(), VALUE_MAGIC),
            Err(PersistError::Malformed { .. })
        ));
    }

    #[test]
    fn empty_input_is_truncated() {
        assert!(matches!(
            from_bytes::<Pair>(&[]),
            Err(PersistError::Truncated { .. })
        ));
    }
}
