//! A fast, non-cryptographic hasher for simulation-internal maps.
//!
//! The standard library's default `SipHash13` is DoS-resistant but costs
//! tens of cycles per small key — measurable when a map ride-along on a
//! per-session hot path (e.g. the market community's pending
//! witness-corroboration index) is probed millions of times per run.
//! [`FxHasher`] is the word-at-a-time multiply-xor scheme used by the
//! Rust compiler itself (`rustc-hash`): a few cycles per word, perfectly
//! adequate for trusted internal keys such as dense peer-id pairs.
//!
//! Hash-*order* must never leak into results: maps keyed by this hasher
//! may only be used for point lookups and order-insensitive folds, never
//! iterated into output (the same rule the determinism suites already
//! enforce for the default hasher).

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The multiplicative word hasher: `state = (rotl5(state) ^ word) · K`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

/// 2⁶⁴ / φ rounded to odd — the classic Fibonacci-hashing multiplier.
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Mix the length in so "ab" | "" and "a" | "b" differ.
            self.add_word(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of((1u32, 2u32)), hash_of((1u32, 2u32)));
        assert_ne!(hash_of((1u32, 2u32)), hash_of((2u32, 1u32)));
        assert_ne!(hash_of(0u64), hash_of(1u64));
    }

    #[test]
    fn byte_streams_with_different_splits_differ() {
        assert_ne!(hash_of(("ab", "")), hash_of(("a", "b")));
        assert_ne!(hash_of([0u8; 3].as_slice()), hash_of([0u8; 4].as_slice()));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut map: HashMap<(u32, u32), u64, FxBuildHasher> = HashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i + 1), i as u64);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(41, 42)), Some(&41));
        assert_eq!(map.get(&(42, 41)), None);
    }
}
