//! Core-theory experiments: existence (E1), scaling (E2), relaxation
//! (E3) and exposure bounds (E7).

use super::Scale;
use crate::table::Table;
use crate::workload::Workload;
use std::time::Instant;
use trustex_core::curves::{generate, CurveParams, CurveShape};
use trustex_core::deal::Deal;
use trustex_core::goods::Goods;
use trustex_core::money::Money;
use trustex_core::policy::PaymentPolicy;
use trustex_core::safety::SafetyMargins;
use trustex_core::scheduler::{
    branch_and_bound_order, sandholm_order_scan, schedule, Algorithm, Scheduler,
};
use trustex_decision::exposure::{exposure_bound, ExposurePolicy};
use trustex_decision::risk::RiskProfile;
use trustex_netsim::rng::SimRng;
use trustex_trust::model::TrustEstimate;

/// E1 — *Table R1*: fully safe sequences never exist for positive-cost
/// goods (Sandholm's impossibility, §2 of the paper); a reputation stake
/// of ε re-enables exchange, with the required margin set by the
/// cheapest-tail delivery.
pub fn e1_existence(scale: Scale) -> Table {
    let trials = scale.pick(40, 400);
    let sizes: &[usize] = scale.pick(&[2, 8][..], &[2, 4, 8, 16, 32][..]);
    let mut table = Table::new(
        "E1: safe-sequence existence (fraction of instances; margin as % of item cost)",
        &[
            "shape",
            "n_items",
            "safe@eps=0",
            "feasible@25%",
            "feasible@50%",
            "feasible@100%",
            "margin/mean_cost",
        ],
    );
    let mut rng = SimRng::new(0xE1);
    let mut sched = Scheduler::new();
    for shape in CurveShape::ALL {
        for &n in sizes {
            let mut safe0 = 0usize;
            let mut ok = [0usize; 3]; // stakes of 25%, 50%, 100% mean item cost
            let mut margin_ratio_sum = 0.0;
            for _ in 0..trials {
                let params = CurveParams {
                    n_items: n,
                    mean_cost: 10.0,
                    value_markup: 1.6,
                };
                let mut draw = || rng.f64();
                let goods = generate(shape, params, &mut draw).expect("n ≥ 1");
                let mean_cost = goods.total_supplier_cost().as_f64() / goods.len() as f64;
                let req = sched.min_required_margin(&goods);
                if req.is_zero() {
                    safe0 += 1;
                }
                for (i, stake_frac) in [0.25, 0.5, 1.0].iter().enumerate() {
                    let eps = Money::from_f64(mean_cost * stake_frac);
                    if req <= eps {
                        ok[i] += 1;
                    }
                }
                margin_ratio_sum += req.as_f64() / mean_cost.max(1e-9);
            }
            let t = trials as f64;
            table.push_row(vec![
                shape.label().into(),
                n.into(),
                (safe0 as f64 / t).into(),
                (ok[0] as f64 / t).into(),
                (ok[1] as f64 / t).into(),
                (ok[2] as f64 / t).into(),
                (margin_ratio_sum / t).into(),
            ]);
        }
    }
    table
}

/// E2 instances are generated in chunked passes: one bulk
/// [`SimRng::fill_f64`] per chunk instead of 2×10⁶ scalar draws at the
/// top ladder size.
const GEN_CHUNK: usize = 8_192;

/// Builds the `n`-item (cost, value) pairs for one E2 ladder rung.
///
/// `unit_draws` is a caller-owned scratch buffer of at least
/// `2 * GEN_CHUNK` slots, reused across rungs, holding interleaved
/// (cost, value) unit draws per chunk. The arithmetic reproduces
/// `range_f64(0.5, 20.0)` / `range_f64(0.5, 30.0)` term for term, so
/// the stream order — and therefore every pinned instance — is
/// identical to the per-item scalar loop.
fn instance_pairs(rng: &mut SimRng, n: usize, unit_draws: &mut [f64]) -> Vec<(Money, Money)> {
    let mut pairs: Vec<(Money, Money)> = Vec::with_capacity(n);
    while pairs.len() < n {
        let m = GEN_CHUNK.min(n - pairs.len());
        let draws = &mut unit_draws[..2 * m];
        rng.fill_f64(draws);
        pairs.extend(draws.chunks_exact(2).map(|cv| {
            (
                Money::from_f64(0.5 + cv[0] * (20.0 - 0.5)),
                Money::from_f64(0.5 + cv[1] * (30.0 - 0.5)),
            )
        }));
    }
    pairs
}

/// E2 — *Figure R2*: runtime scaling of the schedulers. The ladder runs
/// the allocation-free greedy hot path to `n = 10⁶`, the indexed
/// `O(n log n)` Sandholm to `n = 10⁵`, the original `O(n²)` scan (the
/// complexity the paper quotes) while it is still affordable, and the
/// branch-and-bound exact oracle at `n ≤ 30`. Absolute numbers are
/// machine-dependent; the *shape* (quadratic vs quasi-linear growth, and
/// the scan/indexed gap widening with `n`) is the reproduced result.
pub fn e2_scaling(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(
        &[16, 30, 256][..],
        &[16, 30, 256, 4096, 65_536, 100_000, 1_000_000][..],
    );
    // Each algorithm is measured only over its documented ladder: the
    // quadratic scan while n² stays affordable, the indexed sandholm to
    // 10⁵, the exact oracle within its differential-suite range.
    let scan_cap = scale.pick(256, 4096);
    let sandholm_cap = 100_000;
    let bnb_cap = 30;
    let reps = scale.pick(3, 5);
    let mut table = Table::new(
        "E2: scheduler runtime (µs per instance, medians)",
        &[
            "n_items",
            "greedy_us",
            "sandholm_us",
            "scan_us",
            "scan/indexed",
            "bnb_us",
        ],
    );
    let mut rng = SimRng::new(0xE2);
    let mut sched = Scheduler::new();
    let mut order_buf: Vec<trustex_core::goods::ItemId> = Vec::new();
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs[xs.len() / 2]
    };
    let mut unit_draws = vec![0.0f64; 2 * GEN_CHUNK];
    for &n in sizes {
        let pairs = instance_pairs(&mut rng, n, &mut unit_draws);
        let goods = Goods::new(pairs).expect("non-empty");
        // A margin that makes every instance feasible, so every
        // algorithm does full work.
        let eps = goods.total_supplier_cost() + goods.total_consumer_value();
        let margins = SafetyMargins::new(eps, Money::ZERO).expect("non-negative");

        let mut greedy_times = Vec::with_capacity(reps);
        let mut sandholm_times = Vec::with_capacity(reps);
        let mut scan_times = Vec::with_capacity(reps);
        let mut bnb_times = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            // The allocation-free hot path: feasibility check + order
            // derivation against reused buffers, the shape the market
            // simulator runs per session.
            std::hint::black_box(sched.min_required_margin(&goods));
            greedy_times.push(t0.elapsed().as_nanos() as f64 / 1_000.0);

            if n <= sandholm_cap {
                let t0 = Instant::now();
                sched
                    .sandholm_order_into(&goods, margins, &mut order_buf)
                    .expect("feasible");
                std::hint::black_box(&order_buf);
                sandholm_times.push(t0.elapsed().as_nanos() as f64 / 1_000.0);
            }

            if n <= scan_cap {
                let t0 = Instant::now();
                let order = sandholm_order_scan(&goods, margins).expect("feasible");
                std::hint::black_box(&order);
                scan_times.push(t0.elapsed().as_nanos() as f64 / 1_000.0);
            }
            if n <= bnb_cap {
                let t0 = Instant::now();
                let order = branch_and_bound_order(&goods, margins).expect("within cap");
                std::hint::black_box(&order);
                bnb_times.push(t0.elapsed().as_nanos() as f64 / 1_000.0);
            }
        }
        let g = median(greedy_times);
        let mut row = vec![n.into(), g.into()];
        let s = if sandholm_times.is_empty() {
            row.push("-".into());
            None
        } else {
            let s = median(sandholm_times);
            row.push(s.into());
            Some(s)
        };
        if scan_times.is_empty() {
            row.push("-".into());
            row.push("-".into());
        } else {
            let scan = median(scan_times);
            row.push(scan.into());
            // The scan cap never exceeds the indexed sandholm's cap, so
            // the ratio always has its denominator.
            row.push((scan / s.expect("scan implies sandholm").max(1e-9)).into());
        }
        if bnb_times.is_empty() {
            row.push("-".into());
        } else {
            row.push(median(bnb_times).into());
        }
        table.push_row(row);
    }
    table
}

/// E3 — *Figure R3*: fraction of realistic deals that become schedulable
/// as the tolerated margin grows from 0 to 50% of the deal's surplus —
/// the paper's central "sufficiently trustworthy partners can trade even
/// when a fully safe sequence does not exist".
pub fn e3_relaxation(scale: Scale) -> Table {
    let trials = scale.pick(60, 600);
    let fractions = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5];
    let mut table = Table::new(
        "E3: fraction of deals schedulable at margin = f × total surplus",
        &[
            "workload", "f=0", "f=0.05", "f=0.1", "f=0.2", "f=0.3", "f=0.5",
        ],
    );
    let mut rng = SimRng::new(0xE3);
    let mut sched = Scheduler::new();
    for w in Workload::ALL {
        let mut ok = vec![0usize; fractions.len()];
        for _ in 0..trials {
            let deal = w.generate_deal(&mut rng);
            let surplus = deal.goods().total_surplus();
            // One greedy derivation answers the whole margin batch: the
            // requirement is a property of the goods alone.
            let req = sched.min_required_margin(deal.goods());
            for (i, f) in fractions.iter().enumerate() {
                let margins =
                    SafetyMargins::symmetric(surplus.scale(*f / 2.0)).expect("non-negative");
                if req <= margins.total() {
                    ok[i] += 1;
                }
            }
        }
        let mut row = vec![w.label().into()];
        for n_ok in ok {
            row.push((n_ok as f64 / trials as f64).into());
        }
        table.push_row(row);
    }
    table
}

/// E7 — *Figure R6*: the decision module's trust → exposure translation:
/// how the granted ε (as a fraction of the party's gain) and the share of
/// tradeable deals grow with opponent trust, per risk attitude.
pub fn e7_exposure(scale: Scale) -> Table {
    let trials = scale.pick(40, 400);
    let mut table = Table::new(
        "E7: exposure bound and tradeability vs trust (ebay deals)",
        &[
            "p_honest",
            "risk",
            "eps/gain",
            "tradeable",
            "mean_realized_exposure",
        ],
    );
    let mut rng = SimRng::new(0xE7);
    let profiles = [
        RiskProfile::Averse { gamma: 0.5 },
        RiskProfile::Neutral,
        RiskProfile::Seeking { gamma: 2.0 },
    ];
    // One fixed deal sample shared by every (trust, profile) cell so the
    // cells are comparable.
    let deals: Vec<Deal> = (0..trials)
        .map(|_| Workload::Ebay.generate_deal(&mut rng))
        .collect();
    for &p_honest in &[0.5, 0.7, 0.85, 0.95, 0.99] {
        for profile in profiles {
            let mut tradeable = 0usize;
            let mut eps_frac_sum = 0.0;
            let mut realized_sum = 0.0;
            let mut realized_n = 0usize;
            for deal in &deals {
                let est = TrustEstimate::new(p_honest, 1.0);
                let policy = ExposurePolicy {
                    base_budget_fraction: 0.1,
                    risk: profile,
                    cap: deal.price(),
                };
                let eps_s = exposure_bound(est, deal.supplier_profit(), policy);
                let eps_c = exposure_bound(est, deal.consumer_surplus(), policy);
                let gain = deal.supplier_profit().as_f64().max(1e-9);
                eps_frac_sum += eps_s.as_f64() / gain;
                let margins = SafetyMargins::new(eps_s, eps_c).expect("non-negative");
                if let Ok(v) = schedule(deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy) {
                    tradeable += 1;
                    realized_sum += v.max_consumer_temptation().as_f64().max(0.0);
                    realized_n += 1;
                }
            }
            table.push_row(vec![
                p_honest.into(),
                profile.label().into(),
                (eps_frac_sum / trials as f64).into(),
                (tradeable as f64 / trials as f64).into(),
                (realized_sum / realized_n.max(1) as f64).into(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn num(cell: &Cell) -> f64 {
        match cell {
            Cell::Num(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(t) => panic!("expected number, got {t}"),
        }
    }

    /// The chunked instance builder must reproduce the original scalar
    /// `range_f64` loop bit for bit — values AND stream position — at
    /// sizes below, at, straddling and above the chunk size, drawn
    /// back-to-back the way the ladder consumes them.
    #[test]
    fn chunked_instance_pairs_match_scalar_reference() {
        let mut batched = SimRng::new(0xE2);
        let mut scalar = batched.clone();
        let mut unit_draws = vec![0.0f64; 2 * GEN_CHUNK];
        for n in [1usize, 16, GEN_CHUNK, GEN_CHUNK + 1, 3 * GEN_CHUNK / 2] {
            let got = instance_pairs(&mut batched, n, &mut unit_draws);
            let expected: Vec<(Money, Money)> = (0..n)
                .map(|_| {
                    (
                        Money::from_f64(scalar.range_f64(0.5, 20.0)),
                        Money::from_f64(scalar.range_f64(0.5, 30.0)),
                    )
                })
                .collect();
            assert_eq!(got, expected, "n={n}");
            assert_eq!(batched, scalar, "stream position diverged at n={n}");
        }
    }

    #[test]
    fn e1_no_fully_safe_sequences() {
        let t = e1_existence(Scale::Smoke);
        // Column 2 is safe@eps=0: must be 0 for every all-positive-cost
        // shape (all shapes here have positive mean cost).
        for row in t.rows() {
            assert_eq!(num(&row[2]), 0.0, "row {row:?}");
        }
    }

    #[test]
    fn e1_feasibility_monotone_in_stake() {
        let t = e1_existence(Scale::Smoke);
        for row in t.rows() {
            let f25 = num(&row[3]);
            let f50 = num(&row[4]);
            let f100 = num(&row[5]);
            assert!(f25 <= f50 && f50 <= f100, "monotone in stake: {row:?}");
        }
    }

    #[test]
    fn e2_scan_trails_indexed_at_scale() {
        let t = e2_scaling(Scale::Smoke);
        let last = t.rows().last().unwrap();
        // Column 4 is scan/indexed: the quadratic scan must trail the
        // indexed construction at the largest smoke size (n=256).
        assert!(
            num(&last[4]) > 1.0,
            "quadratic scan must trail the indexed sandholm at n=256: {last:?}"
        );
    }

    #[test]
    fn e2_exact_oracle_measured_only_within_cap() {
        let t = e2_scaling(Scale::Smoke);
        for row in t.rows() {
            let n = match &row[0] {
                Cell::Int(v) => *v,
                other => panic!("expected n_items, got {other:?}"),
            };
            let bnb = &row[5];
            if n <= 30 {
                assert!(
                    matches!(bnb, Cell::Num(_)),
                    "bnb must be timed at n={n}: {row:?}"
                );
            } else {
                assert!(
                    matches!(bnb, Cell::Text(s) if s == "-"),
                    "bnb must be skipped at n={n}: {row:?}"
                );
            }
        }
    }

    #[test]
    fn e3_relaxation_monotone() {
        let t = e3_relaxation(Scale::Smoke);
        for row in t.rows() {
            let vals: Vec<f64> = (1..row.len()).map(|i| num(&row[i])).collect();
            for w in vals.windows(2) {
                assert!(w[0] <= w[1] + 1e-9, "fractions must be monotone: {row:?}");
            }
            assert_eq!(vals[0], 0.0, "f=0 never schedulable: {row:?}");
        }
    }

    #[test]
    fn e7_exposure_grows_with_trust() {
        let t = e7_exposure(Scale::Smoke);
        // For the neutral profile, eps/gain strictly grows with p_honest.
        let neutral: Vec<f64> = t
            .rows()
            .iter()
            .filter(|r| matches!(&r[1], Cell::Text(s) if s == "neutral"))
            .map(|r| num(&r[2]))
            .collect();
        assert!(neutral.len() >= 3);
        for w in neutral.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "{neutral:?}");
        }
    }

    #[test]
    fn e7_risk_ordering() {
        let t = e7_exposure(Scale::Smoke);
        // At fixed trust, averse ≤ neutral ≤ seeking in eps/gain.
        for chunk in t.rows().chunks(3) {
            if chunk.len() == 3 {
                assert!(num(&chunk[0][2]) <= num(&chunk[1][2]) + 1e-9);
                assert!(num(&chunk[1][2]) <= num(&chunk[2][2]) + 1e-9);
            }
        }
    }
}
