//! The adversary zoo: composable *coordinated* attack strategies.
//!
//! The paper's threat model stops at independent liars; production
//! reputation systems die to coordination. This module packages the
//! classic coordinated attacks as [`AgentProfile`]s so the market
//! simulation can mix them into a population:
//!
//! * **Collusion rings** ([`Adversary::Colluder`]) — members report
//!   `Honest` about fellow ring members regardless of what happened and
//!   file unprovoked positive vouches for each other (EigenTrust's
//!   motivating case).
//! * **Targeted slander** ([`Adversary::Slanderer`]) — a cell files
//!   unprovoked complaints against a marked set of honest victims
//!   instead of random targets.
//! * **Sybil amplification** ([`Adversary::Sybil`]) — every witness
//!   report one cell identity gossips is echoed by up to `fanout`
//!   fellow identities, multiplying its apparent corroboration.
//! * **Oscillation** ([`Adversary::Oscillator`]) — on/off defectors
//!   that rebuild trust during honest phases and strike in bursts,
//!   milking decayed history.
//! * **Whitewashing** ([`Adversary::Whitewasher`]) — identity churn:
//!   the community's memory of the agent is wiped every `period`
//!   rounds, as if it had left and rejoined with a fresh id (the
//!   overlay-side counterpart is `Lifecycle::whitewash` in
//!   `trustex-reputation`).
//!
//! Every archetype is parameterised by a **coordination level** `c ∈
//! [0, 1]`. At `c == 0` each degrades *exactly* to the independent
//! baseline profiles of [`PopulationMix::standard`] — same
//! [`AgentProfile`] values, no faction marking — so a zoo mix at zero
//! coordination reproduces the pre-zoo experiment tables bit for bit
//! (pinned by the adversary property suite in `trustex-market`).

use crate::behavior::ExchangeBehavior;
use crate::profile::{AgentProfile, PopulationMix};
use crate::reporting::ReportingBehavior;
use serde::{Deserialize, Serialize};

/// Coordinated-campaign membership attached to an [`AgentProfile`].
///
/// `Faction::None` (the default) marks every pre-zoo profile; the
/// simulation's campaign hooks are inert for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Faction {
    /// No coordinated affiliation.
    #[default]
    None,
    /// Member of collusion ring `0`: cross-vouches for fellow members.
    Ring(u16),
    /// Member of the slander campaign targeting the victim set.
    SlanderCell,
    /// Sybil identity: up to `fanout` fellow identities of `cell` echo
    /// every witness report this agent gossips.
    Sybil {
        /// Cell the identity belongs to.
        cell: u16,
        /// Maximum fellow identities echoing each report.
        fanout: u16,
    },
    /// Marked honest victim of the slander campaign.
    Victim,
    /// Whitewasher: the community's memory of this agent is wiped every
    /// `period` rounds (identity churn).
    Whitewash {
        /// Rounds between identity resets (≥ 1).
        period: u64,
    },
}

/// The composable coordinated-attack archetypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Adversary {
    /// Collusion-ring member (cross-vouching).
    Colluder,
    /// Targeted slander-campaign member.
    Slanderer,
    /// Sybil identity with witness-report amplification.
    Sybil,
    /// On/off oscillating defector.
    Oscillator,
    /// Identity-churning whitewasher.
    Whitewasher,
}

/// Share of the honest population marked as slander victims when a
/// slander cell is present at positive coordination.
pub const VICTIM_SHARE: f64 = 0.1;

impl Adversary {
    /// All archetypes, in zoo order.
    pub const ALL: [Adversary; 5] = [
        Adversary::Colluder,
        Adversary::Slanderer,
        Adversary::Sybil,
        Adversary::Oscillator,
        Adversary::Whitewasher,
    ];

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Adversary::Colluder => "colluder",
            Adversary::Slanderer => "slanderer",
            Adversary::Sybil => "sybil",
            Adversary::Oscillator => "oscillator",
            Adversary::Whitewasher => "whitewasher",
        }
    }

    /// One attacker's profile at coordination level `c` (clamped to
    /// `[0, 1]`).
    ///
    /// At `c == 0` the result is exactly the independent baseline the
    /// standard mixes use — zero-stake rational defectors, lying or
    /// truthful reporters, no faction — so coordinated populations
    /// degrade bit-identically to the existing experiments.
    pub fn profile(self, coordination: f64) -> AgentProfile {
        let c = coordination.clamp(0.0, 1.0);
        let defect = ExchangeBehavior::Rational { stake_micros: 0 };
        if c <= 0.0 {
            let reporting = match self {
                // Colluders and sybils decay to independent liars, the
                // rest to truthful defectors — together exactly the
                // `PopulationMix::standard(f, 0.4)` split.
                Adversary::Colluder | Adversary::Sybil => ReportingBehavior::Liar,
                _ => ReportingBehavior::Truthful,
            };
            return AgentProfile {
                exchange: defect,
                reporting,
                faction: Faction::None,
            };
        }
        match self {
            Adversary::Colluder => AgentProfile {
                exchange: defect,
                reporting: ReportingBehavior::Colluder {
                    vouch_prob: 0.5 * c,
                },
                faction: Faction::Ring(0),
            },
            Adversary::Slanderer => AgentProfile {
                exchange: defect,
                reporting: ReportingBehavior::Smear {
                    smear_prob: 0.5 * c,
                },
                faction: Faction::SlanderCell,
            },
            Adversary::Sybil => AgentProfile {
                exchange: defect,
                reporting: ReportingBehavior::Liar,
                faction: Faction::Sybil {
                    cell: 0,
                    fanout: (c * 8.0).round() as u16,
                },
            },
            Adversary::Oscillator => AgentProfile {
                // Longer defecting bursts at higher coordination; the
                // honest phase rebuilds whatever trust decays away.
                exchange: ExchangeBehavior::Oscillating {
                    period: 8,
                    defect_rounds: 1 + (c * 3.0).round() as u64,
                },
                reporting: ReportingBehavior::Truthful,
                faction: Faction::None,
            },
            Adversary::Whitewasher => AgentProfile {
                exchange: defect,
                reporting: ReportingBehavior::Truthful,
                faction: Faction::Whitewash {
                    period: (2.0 + 14.0 * (1.0 - c)).round() as u64,
                },
            },
        }
    }
}

/// A population mix with `attacker_fraction` of the community split
/// evenly across the given archetypes at coordination level
/// `coordination`, the rest honest truthful citizens.
///
/// When a slander cell is present (and coordination is positive),
/// [`VICTIM_SHARE`] of the honest population is marked
/// [`Faction::Victim`]; victims behave exactly like other honest agents
/// — the marking only aims the campaign.
///
/// # Panics
///
/// Panics when `zoo` is empty.
pub fn mix_of(zoo: &[Adversary], attacker_fraction: f64, coordination: f64) -> PopulationMix {
    assert!(!zoo.is_empty(), "adversary zoo cannot be empty");
    let f = attacker_fraction.clamp(0.0, 1.0);
    let c = coordination.clamp(0.0, 1.0);
    let honest = 1.0 - f;
    let victim = if c > 0.0 && zoo.contains(&Adversary::Slanderer) {
        AgentProfile {
            faction: Faction::Victim,
            ..AgentProfile::honest()
        }
    } else {
        AgentProfile::honest()
    };
    let mut entries = vec![
        (honest * (1.0 - VICTIM_SHARE), AgentProfile::honest()),
        (honest * VICTIM_SHARE, victim),
    ];
    let share = f / zoo.len() as f64;
    for archetype in zoo {
        entries.push((share, archetype.profile(c)));
    }
    PopulationMix::new(entries)
}

/// The full zoo: [`mix_of`] over every archetype in [`Adversary::ALL`].
pub fn zoo_mix(attacker_fraction: f64, coordination: f64) -> PopulationMix {
    mix_of(&Adversary::ALL, attacker_fraction, coordination)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_coordination_degrades_to_standard_baselines() {
        let defect = ExchangeBehavior::Rational { stake_micros: 0 };
        for archetype in Adversary::ALL {
            let p = archetype.profile(0.0);
            assert_eq!(p.exchange, defect, "{archetype:?}");
            assert_eq!(p.faction, Faction::None, "{archetype:?}");
            assert!(
                matches!(
                    p.reporting,
                    ReportingBehavior::Liar | ReportingBehavior::Truthful
                ),
                "{archetype:?} must decay to an independent reporter"
            );
        }
        // Exactly 2 of 5 archetypes decay to liars: the zoo at c = 0 is
        // the standard mix at liar share 0.4.
        let liars = Adversary::ALL
            .iter()
            .filter(|a| a.profile(0.0).reporting == ReportingBehavior::Liar)
            .count();
        assert_eq!(liars, 2);
    }

    #[test]
    fn positive_coordination_marks_factions() {
        assert_eq!(
            Adversary::Colluder.profile(1.0).faction,
            Faction::Ring(0),
            "colluders join the ring"
        );
        assert_eq!(
            Adversary::Slanderer.profile(0.5).faction,
            Faction::SlanderCell
        );
        assert!(matches!(
            Adversary::Sybil.profile(1.0).faction,
            Faction::Sybil { fanout: 8, .. }
        ));
        assert!(matches!(
            Adversary::Whitewasher.profile(1.0).faction,
            Faction::Whitewash { period: 2 }
        ));
        // Low coordination churns slowly.
        assert!(matches!(
            Adversary::Whitewasher.profile(1e-9).faction,
            Faction::Whitewash { period: 16 }
        ));
    }

    #[test]
    fn coordination_scales_campaign_rates() {
        for c in [0.25, 0.5, 1.0] {
            match Adversary::Colluder.profile(c).reporting {
                ReportingBehavior::Colluder { vouch_prob } => {
                    assert!((vouch_prob - 0.5 * c).abs() < 1e-12)
                }
                other => panic!("unexpected reporting {other:?}"),
            }
            match Adversary::Slanderer.profile(c).reporting {
                ReportingBehavior::Smear { smear_prob } => {
                    assert!((smear_prob - 0.5 * c).abs() < 1e-12)
                }
                other => panic!("unexpected reporting {other:?}"),
            }
        }
    }

    #[test]
    fn oscillator_milkable_duty_cycle() {
        let p = Adversary::Oscillator.profile(1.0);
        match p.exchange {
            ExchangeBehavior::Oscillating {
                period,
                defect_rounds,
            } => {
                assert_eq!((period, defect_rounds), (8, 4));
                assert!(!p.exchange.is_fundamentally_honest());
                assert!((p.exchange.true_cooperation_prob() - 0.5).abs() < 1e-12);
            }
            other => panic!("unexpected exchange {other:?}"),
        }
    }

    #[test]
    fn zoo_mix_composition() {
        let mix = zoo_mix(0.5, 1.0);
        let entries = mix.entries();
        // 2 honest entries (plain + victim-marked) + 5 archetypes.
        assert_eq!(entries.len(), 7);
        let total: f64 = entries.iter().map(|(w, _)| *w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(entries[1].1.faction, Faction::Victim);
        // Attacker weight split evenly.
        for (w, _) in &entries[2..] {
            assert!((w - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zoo_mix_without_slanderers_marks_no_victims() {
        let mix = mix_of(&[Adversary::Colluder], 0.3, 1.0);
        assert!(mix
            .entries()
            .iter()
            .all(|(_, p)| p.faction != Faction::Victim));
        // ... and so does the full zoo at zero coordination.
        let cold = zoo_mix(0.3, 0.0);
        assert!(cold
            .entries()
            .iter()
            .all(|(_, p)| p.faction == Faction::None));
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = Adversary::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(
            labels,
            [
                "colluder",
                "slanderer",
                "sybil",
                "oscillator",
                "whitewasher"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_zoo_panics() {
        mix_of(&[], 0.3, 1.0);
    }
}
