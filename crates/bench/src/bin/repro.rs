//! Regenerates every table and figure of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p trustex-bench --bin repro            # all, paper scale
//! cargo run --release -p trustex-bench --bin repro -- --smoke # all, smoke scale
//! cargo run --release -p trustex-bench --bin repro -- e4 e6   # a subset
//! cargo run --release -p trustex-bench --bin repro -- --only e5,e8,e9
//! cargo run --release -p trustex-bench --bin repro -- --threads 8
//! ```
//!
//! `--only ID[,ID...]` selects a comma-separated subset in one flag —
//! the form perf iteration on a hot path wants (e.g. `--only e6`
//! isolates the P-Grid overlay ladder, `--only e5,e8,e9` the trust
//! layer); it composes with positional ids and rejects unknown or empty
//! ids with exit code 2 before any work runs.
//!
//! `--threads N` pins the worker-pool size used by the arm-parallel
//! experiment runner and the sharded market simulator (default: detected
//! parallelism; results are identical for every value). Each run also
//! writes per-experiment wall-clock timings to `BENCH_repro.json`
//! (override the path with `--bench-out PATH`), a flat JSON object
//! mapping experiment id → milliseconds, so CI can track the perf
//! trajectory per PR.
//!
//! Every table except E2 and E12 is a pure function of its seed
//! (bit-identical for any `--threads`). E2 is the scheduler scaling
//! ladder — greedy to `n = 10⁶`, indexed sandholm to `n = 10⁵`, the
//! quadratic scan to `n = 4096`, branch-and-bound to `n = 30` — whose
//! cells are wall-clock medians; E12 is the trust-service replay, whose
//! count/epoch columns are seed-pinned but whose throughput and latency
//! percentiles are wall-clock. Both machine-dependent by design.

use std::time::Instant;
use trustex_bench::timings_to_json;
use trustex_market::experiments::{find, Scale, ALL};
use trustex_netsim::pool::{default_threads, set_default_threads};

struct Args {
    smoke: bool,
    threads: usize,
    bench_out: String,
    ids: Vec<String>,
}

fn usage_exit(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: repro [--smoke] [--threads N] [--bench-out PATH] [--only ID[,ID...]] [id...]"
    );
    eprintln!(
        "known ids: {}",
        ALL.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
    );
    std::process::exit(2);
}

fn parse_args(raw: Vec<String>) -> Args {
    let mut args = Args {
        smoke: false,
        threads: 0,
        bench_out: "BENCH_repro.json".to_owned(),
        ids: Vec::new(),
    };
    let mut iter = raw.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| usage_exit("--threads requires a value"));
                args.threads = match value.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => usage_exit(&format!("invalid thread count: {value}")),
                };
            }
            "--bench-out" => {
                args.bench_out = iter
                    .next()
                    .unwrap_or_else(|| usage_exit("--bench-out requires a path"));
            }
            "--only" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| usage_exit("--only requires a comma-separated id list"));
                let before = args.ids.len();
                for id in value.split(',') {
                    let id = id.trim();
                    if id.is_empty() {
                        usage_exit(&format!("--only has an empty experiment id: {value:?}"));
                    }
                    args.ids.push(id.to_owned());
                }
                if args.ids.len() == before {
                    usage_exit("--only requires at least one experiment id");
                }
            }
            other if other.starts_with("--") => {
                usage_exit(&format!("unknown flag: {other}"));
            }
            id => args.ids.push(id.to_owned()),
        }
    }
    args
}

fn main() {
    let args = parse_args(std::env::args().skip(1).collect());
    if args.threads > 0 {
        set_default_threads(args.threads);
    }
    let scale = if args.smoke {
        Scale::Smoke
    } else {
        Scale::Paper
    };

    let selected: Vec<_> = if args.ids.is_empty() {
        ALL.iter().collect()
    } else {
        // Duplicates (positional or via --only) would run an experiment
        // twice and emit duplicate keys in the timings JSON — reject
        // them up front like unknown ids.
        let mut seen: Vec<&str> = Vec::with_capacity(args.ids.len());
        args.ids
            .iter()
            .map(|id| {
                if seen.contains(&id.as_str()) {
                    usage_exit(&format!("duplicate experiment id: {id}"));
                }
                seen.push(id);
                find(id).unwrap_or_else(|| usage_exit(&format!("unknown experiment id: {id}")))
            })
            .collect()
    };

    println!(
        "# trustex experiment reproduction ({} scale, {} threads)\n",
        if args.smoke { "smoke" } else { "paper" },
        default_threads(),
    );
    let mut timings: Vec<(&str, f64)> = Vec::with_capacity(selected.len());
    for experiment in selected {
        let start = Instant::now();
        let table = (experiment.run)(scale);
        let elapsed = start.elapsed();
        timings.push((experiment.id, elapsed.as_secs_f64() * 1_000.0));
        println!("[{}] {} ({elapsed:.2?})", experiment.id, experiment.title);
        println!("{}", table.render());
    }

    let json = timings_to_json(&timings);
    match std::fs::write(&args.bench_out, &json) {
        Ok(()) => eprintln!("wall-clock timings written to {}", args.bench_out),
        Err(err) => {
            eprintln!("failed to write {}: {err}", args.bench_out);
            std::process::exit(1);
        }
    }
}
