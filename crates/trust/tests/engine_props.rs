//! Differential suite for the epoch-swapped trust engine.
//!
//! The engine's contract is that its read path is a pure function of the
//! *published* event prefix: after every publish, a snapshot's
//! predictions must equal a reference model that applied exactly the
//! published events directly, bit for bit — regardless of the arrival
//! order of the submissions (the publish fold is pinned by sequence
//! numbers) and regardless of how many snapshots readers are still
//! holding. These tests pin that on random write/publish interleavings
//! for all four model kinds.

use proptest::prelude::*;
use trustex_trust::baselines::{EwmaTrust, MeanTrust};
use trustex_trust::beta::BetaTrust;
use trustex_trust::complaints::ComplaintTrust;
use trustex_trust::engine::{TrustEngine, TrustEvent};
use trustex_trust::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};

const POP: u32 = 12;

/// One step of a random engine workout: a feedback event or a publish
/// boundary.
#[derive(Debug, Clone, Copy)]
enum Step {
    Direct {
        subject: u32,
        honest: bool,
        round: u64,
    },
    Witness {
        witness: u32,
        subject: u32,
        honest: bool,
        round: u64,
    },
    Publish,
}

fn steps(max_len: usize) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (0u8..5, 0u32..POP, 0u32..POP, any::<bool>(), 0u64..20).prop_map(
            |(kind, a, b, honest, round)| match kind {
                0 => Step::Publish,
                1 | 2 => Step::Witness {
                    witness: a,
                    subject: b,
                    honest,
                    round,
                },
                _ => Step::Direct {
                    subject: a,
                    honest,
                    round,
                },
            },
        ),
        0..max_len,
    )
}

fn event_of(step: Step) -> Option<TrustEvent> {
    match step {
        Step::Publish => None,
        Step::Direct {
            subject,
            honest,
            round,
        } => Some(TrustEvent::direct(
            PeerId(subject),
            Conduct::from_honest(honest),
            round,
        )),
        Step::Witness {
            witness,
            subject,
            honest,
            round,
        } => Some(TrustEvent::Witness(WitnessReport {
            witness: PeerId(witness),
            subject: PeerId(subject),
            conduct: Conduct::from_honest(honest),
            round,
        })),
    }
}

fn assert_estimates_eq(got: &[TrustEstimate], want: &[TrustEstimate], context: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            (g.p_honest, g.confidence),
            (w.p_honest, w.confidence),
            "{context}: subject {i} diverged"
        );
    }
}

/// Drives `steps` through an engine while a reference model applies the
/// same *published* prefix directly. After every publish — i.e. after
/// every prefix of the interleaving — the fresh snapshot's full row must
/// match the reference bit for bit; within a window the pending events
/// must stay invisible. Submission arrival order is scrambled (each
/// window is submitted back to front, keeping the original sequence
/// numbers) to pin the seq-ordered publish fold. Every snapshot ever
/// taken is retained and re-checked against its own epoch's reference at
/// the end, so old epochs provably never move.
fn check_engine_against_reference<M>(model: M, steps: &[Step])
where
    M: TrustModel + Clone + Send + Sync + 'static,
{
    let reference_base = model.clone();
    let engine = TrustEngine::new(model);
    let mut reference = reference_base;
    let mut row = vec![TrustEstimate::UNKNOWN; POP as usize];
    let mut want = vec![TrustEstimate::UNKNOWN; POP as usize];

    // (epoch, reference row at that epoch, snapshot taken then).
    let mut history = Vec::new();
    let mut window: Vec<(u64, TrustEvent)> = Vec::new();
    let mut seq = 0u64;
    let mut boundaries = 0usize;

    for &step in steps {
        match event_of(step) {
            Some(event) => {
                window.push((seq, event));
                seq += 1;
            }
            None => {
                boundaries += 1;
                // Pending events are invisible before the publish.
                let pre = engine.snapshot();
                pre.predict_row_into(&mut row);
                reference.predict_row_into(&mut want);
                assert_estimates_eq(&row, &want, &format!("pre-publish {boundaries}"));

                // Scrambled arrival: back to front, original seqs.
                engine.submit_batch(window.iter().rev().cloned());
                for (_, event) in window.drain(..) {
                    event.apply(&mut reference);
                }
                let epoch = engine.publish();

                let snap = engine.snapshot();
                assert_eq!(snap.epoch(), epoch);
                snap.predict_row_into(&mut row);
                reference.predict_row_into(&mut want);
                assert_estimates_eq(&row, &want, &format!("post-publish {boundaries}"));
                history.push((epoch, want.clone(), snap));
            }
        }
    }

    // No epoch ever moves: every retained snapshot still serves exactly
    // its own published prefix.
    for (epoch, want, snap) in &history {
        assert_eq!(snap.epoch(), *epoch);
        snap.predict_row_into(&mut row);
        assert_estimates_eq(&row, want, &format!("retained epoch {epoch}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn beta_engine_matches_direct_folds(steps in steps(120)) {
        check_engine_against_reference(BetaTrust::with_population(POP as usize), &steps);
    }

    #[test]
    fn complaint_engine_matches_direct_folds(steps in steps(120)) {
        check_engine_against_reference(ComplaintTrust::with_population(POP as usize), &steps);
    }

    #[test]
    fn mean_engine_matches_direct_folds(steps in steps(120)) {
        check_engine_against_reference(MeanTrust::new(), &steps);
    }

    #[test]
    fn ewma_engine_matches_direct_folds(steps in steps(120)) {
        check_engine_against_reference(EwmaTrust::new(0.3), &steps);
    }
}
