//! Reporting behaviours: how community members feed the reputation
//! system *after* an exchange.
//!
//! Honest reputation data is what makes trust-aware exchange work; lying
//! reporters are the primary attack on it. The market simulation calls
//! [`ReportingBehavior::report`] with the true observed conduct and
//! publishes whatever comes back.

use crate::adversary::Faction;
use serde::{Deserialize, Serialize};
use trustex_netsim::rng::SimRng;
use trustex_trust::model::Conduct;

/// How an agent reports interaction outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReportingBehavior {
    /// Reports the truth.
    Truthful,
    /// Always reports the opposite of what happened.
    Liar,
    /// Reports truthfully about honest partners but also files
    /// unprovoked false complaints against random victims with the given
    /// per-round probability.
    Slanderer {
        /// Probability of filing a fake complaint each round.
        slander_prob: f64,
    },
    /// Never reports anything (free rider on the reputation system).
    Silent,
    /// Collusion-ring member: claims `Honest` about fellow ring members
    /// regardless of what happened, reports the truth about outsiders
    /// (cover), and files unprovoked positive vouches for ring members.
    Colluder {
        /// Probability of an unprovoked vouch per session.
        vouch_prob: f64,
    },
    /// Targeted slander-campaign member: claims `Dishonest` about
    /// marked victims, reports the truth about everyone else (cover),
    /// and files unprovoked complaints against the victim set.
    Smear {
        /// Probability of an unprovoked targeted complaint per session.
        smear_prob: f64,
    },
}

/// An unprovoked report a reporting behaviour may file after a session
/// (see [`ReportingBehavior::campaigns_now`]); the market simulation
/// resolves the target and delivers the gossip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Campaign {
    /// A fake complaint against a uniformly random other agent (the
    /// independent [`ReportingBehavior::Slanderer`]).
    RandomSlander,
    /// A fake complaint against a member of the marked victim set.
    TargetedSlander,
    /// An unprovoked `Honest` vouch for a fellow ring member.
    Vouch,
}

impl ReportingBehavior {
    /// Shapes a true observation into what the agent actually reports;
    /// `None` means no report is filed.
    pub fn report(self, truth: Conduct) -> Option<Conduct> {
        match self {
            ReportingBehavior::Truthful => Some(truth),
            ReportingBehavior::Liar => Some(truth.inverted()),
            ReportingBehavior::Slanderer { .. } => Some(truth),
            ReportingBehavior::Silent => None,
            // Outside their campaign targets, coordinated reporters
            // tell the truth as cover; faction-aware shaping happens in
            // `report_about`.
            ReportingBehavior::Colluder { .. } | ReportingBehavior::Smear { .. } => Some(truth),
        }
    }

    /// Faction-aware report shaping: like [`ReportingBehavior::report`]
    /// but coordinated behaviours may distort based on who the subject
    /// is — colluders vouch `Honest` for fellow ring members, smear
    /// cells claim `Dishonest` about marked victims. For every
    /// non-coordinated behaviour this is exactly `report(truth)`.
    pub fn report_about(
        self,
        truth: Conduct,
        own_faction: Faction,
        subject_faction: Faction,
    ) -> Option<Conduct> {
        match self {
            ReportingBehavior::Colluder { .. } => {
                if let (Faction::Ring(own), Faction::Ring(subject)) = (own_faction, subject_faction)
                {
                    if own == subject {
                        return Some(Conduct::Honest);
                    }
                }
                Some(truth)
            }
            ReportingBehavior::Smear { .. } => {
                if subject_faction == Faction::Victim {
                    Some(Conduct::Dishonest)
                } else {
                    Some(truth)
                }
            }
            other => other.report(truth),
        }
    }

    /// Whether the agent files an unprovoked slander complaint this round.
    pub fn slanders_now(self, rng: &mut SimRng) -> bool {
        match self {
            ReportingBehavior::Slanderer { slander_prob } => rng.chance(slander_prob),
            _ => false,
        }
    }

    /// Which unprovoked campaign report, if any, the agent files after a
    /// session. Behaviours without a campaign never touch the RNG, so
    /// populations without them replay bit-identical streams.
    pub fn campaigns_now(self, rng: &mut SimRng) -> Option<Campaign> {
        match self {
            ReportingBehavior::Slanderer { slander_prob } => {
                rng.chance(slander_prob).then_some(Campaign::RandomSlander)
            }
            ReportingBehavior::Smear { smear_prob } => {
                rng.chance(smear_prob).then_some(Campaign::TargetedSlander)
            }
            ReportingBehavior::Colluder { vouch_prob } => {
                rng.chance(vouch_prob).then_some(Campaign::Vouch)
            }
            _ => None,
        }
    }

    /// Whether reports from this behaviour are truthful.
    pub fn is_truthful(self) -> bool {
        matches!(
            self,
            ReportingBehavior::Truthful | ReportingBehavior::Slanderer { .. }
        )
    }

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            ReportingBehavior::Truthful => "truthful",
            ReportingBehavior::Liar => "liar",
            ReportingBehavior::Slanderer { .. } => "slanderer",
            ReportingBehavior::Silent => "silent",
            ReportingBehavior::Colluder { .. } => "colluder",
            ReportingBehavior::Smear { .. } => "smear",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthful_passes_through() {
        assert_eq!(
            ReportingBehavior::Truthful.report(Conduct::Honest),
            Some(Conduct::Honest)
        );
        assert_eq!(
            ReportingBehavior::Truthful.report(Conduct::Dishonest),
            Some(Conduct::Dishonest)
        );
    }

    #[test]
    fn liar_inverts() {
        assert_eq!(
            ReportingBehavior::Liar.report(Conduct::Honest),
            Some(Conduct::Dishonest)
        );
        assert_eq!(
            ReportingBehavior::Liar.report(Conduct::Dishonest),
            Some(Conduct::Honest)
        );
    }

    #[test]
    fn silent_reports_nothing() {
        assert_eq!(ReportingBehavior::Silent.report(Conduct::Honest), None);
    }

    #[test]
    fn slanderer_reports_truth_but_slanders() {
        let s = ReportingBehavior::Slanderer { slander_prob: 1.0 };
        assert_eq!(s.report(Conduct::Dishonest), Some(Conduct::Dishonest));
        let mut rng = SimRng::new(1);
        assert!(s.slanders_now(&mut rng));
        assert!(!ReportingBehavior::Truthful.slanders_now(&mut rng));
    }

    #[test]
    fn slander_rate() {
        let s = ReportingBehavior::Slanderer { slander_prob: 0.25 };
        let mut rng = SimRng::new(2);
        let hits = (0..10_000).filter(|_| s.slanders_now(&mut rng)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "{rate}");
    }

    #[test]
    fn colluder_vouches_for_ring_and_covers_elsewhere() {
        let c = ReportingBehavior::Colluder { vouch_prob: 1.0 };
        // Fellow ring member: always whitewashed to Honest.
        assert_eq!(
            c.report_about(Conduct::Dishonest, Faction::Ring(0), Faction::Ring(0)),
            Some(Conduct::Honest)
        );
        // Different ring or outsider: truthful cover.
        assert_eq!(
            c.report_about(Conduct::Dishonest, Faction::Ring(0), Faction::Ring(1)),
            Some(Conduct::Dishonest)
        );
        assert_eq!(
            c.report_about(Conduct::Honest, Faction::Ring(0), Faction::None),
            Some(Conduct::Honest)
        );
        let mut rng = SimRng::new(3);
        assert_eq!(c.campaigns_now(&mut rng), Some(Campaign::Vouch));
    }

    #[test]
    fn smear_targets_victims_only() {
        let s = ReportingBehavior::Smear { smear_prob: 1.0 };
        assert_eq!(
            s.report_about(Conduct::Honest, Faction::SlanderCell, Faction::Victim),
            Some(Conduct::Dishonest)
        );
        assert_eq!(
            s.report_about(Conduct::Honest, Faction::SlanderCell, Faction::None),
            Some(Conduct::Honest)
        );
        let mut rng = SimRng::new(4);
        assert_eq!(s.campaigns_now(&mut rng), Some(Campaign::TargetedSlander));
    }

    #[test]
    fn report_about_matches_report_for_independent_behaviours() {
        let behaviours = [
            ReportingBehavior::Truthful,
            ReportingBehavior::Liar,
            ReportingBehavior::Slanderer { slander_prob: 0.3 },
            ReportingBehavior::Silent,
        ];
        for b in behaviours {
            for truth in [Conduct::Honest, Conduct::Dishonest] {
                for faction in [Faction::None, Faction::Victim, Faction::Ring(2)] {
                    assert_eq!(
                        b.report_about(truth, Faction::None, faction),
                        b.report(truth),
                        "{b:?} must ignore factions"
                    );
                }
            }
        }
    }

    #[test]
    fn campaigns_consume_no_rng_for_independent_reporters() {
        // Truthful/Liar/Silent must not advance the stream: two RNGs,
        // one run through campaigns_now, must stay in lockstep.
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for behaviour in [
            ReportingBehavior::Truthful,
            ReportingBehavior::Liar,
            ReportingBehavior::Silent,
        ] {
            assert_eq!(behaviour.campaigns_now(&mut a), None);
        }
        assert_eq!(a.next_u64(), b.next_u64(), "stream advanced");
    }

    #[test]
    fn slanderer_campaign_matches_slanders_now() {
        let s = ReportingBehavior::Slanderer { slander_prob: 0.25 };
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        for _ in 0..500 {
            assert_eq!(
                s.campaigns_now(&mut a) == Some(Campaign::RandomSlander),
                s.slanders_now(&mut b)
            );
        }
    }

    #[test]
    fn truthfulness_classification() {
        assert!(ReportingBehavior::Truthful.is_truthful());
        assert!(ReportingBehavior::Slanderer { slander_prob: 0.1 }.is_truthful());
        assert!(!ReportingBehavior::Liar.is_truthful());
        assert!(!ReportingBehavior::Silent.is_truthful());
    }

    #[test]
    fn labels() {
        assert_eq!(ReportingBehavior::Truthful.label(), "truthful");
        assert_eq!(ReportingBehavior::Liar.label(), "liar");
        assert_eq!(
            ReportingBehavior::Slanderer { slander_prob: 0.1 }.label(),
            "slanderer"
        );
        assert_eq!(ReportingBehavior::Silent.label(), "silent");
    }
}
