//! Complaint-based trust (Aberer & Despotovic, CIKM 2001 — reference \[2\]
//! of the paper).
//!
//! The CIKM 2001 system records only *negative* feedback: after a bad
//! interaction, the wronged peer files a complaint `c(p, q)`. The key
//! observation is that for an honest population both filing and receiving
//! complaints are rare, while cheaters *receive* many complaints and
//! liars *file* many; the product
//!
//! ```text
//!   T(q) = (cr(q) + 1) · (cf(q) + 1)
//! ```
//!
//! (complaints received × complaints filed, Laplace-shifted) is small for
//! honest peers and large for misbehaving ones. A peer is assessed
//! dishonest when its product exceeds a dispersion-based threshold of the
//! observed sample — the decision rule the CIKM paper phrases as
//! detecting outliers relative to the average behaviour.
//!
//! The module exposes both the paper-faithful binary decision
//! ([`ComplaintTrust::assess`]) and a smooth probability mapping so the
//! model can participate in the common [`TrustModel`] interface.

use crate::confidence::evidence_confidence;
use crate::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};
use crate::table::dense_slot;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use trustex_persist::codec::{ByteReader, ByteWriter};
use trustex_persist::snapshot::Persistable;
use trustex_persist::PersistError;

/// Configuration of the complaint-based model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplaintConfig {
    /// A peer is assessed dishonest when its complaint product exceeds
    /// `outlier_factor` times the population median product.
    pub outlier_factor: f64,
    /// Weight of a witness-relayed complaint relative to a direct one.
    pub witness_weight: f64,
    /// Scorer-weighted aggregation: additionally scale relayed
    /// complaints by the evaluator's current honesty estimate for the
    /// *complainer* (`predict(witness).p_honest`). Peers whose own
    /// complaint product already marks them as outliers — serial
    /// slanderers, heavily-complained-about cheaters — lose most of
    /// their power to pile further complaints onto victims.
    #[serde(default)]
    pub scorer_weighted: bool,
}

impl Default for ComplaintConfig {
    fn default() -> Self {
        ComplaintConfig {
            outlier_factor: 4.0,
            witness_weight: 0.5,
            scorer_weighted: false,
        }
    }
}

/// Binary assessment in the style of the CIKM 2001 decision rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Assessment {
    /// No evidence of misbehaviour beyond the population baseline.
    Trustworthy,
    /// Complaint product exceeds the outlier threshold.
    Untrustworthy,
}

impl Assessment {
    /// Whether the assessment is trustworthy.
    pub fn is_trustworthy(self) -> bool {
        matches!(self, Assessment::Trustworthy)
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct Tally {
    received: f64,
    filed: f64,
    /// Whether this peer ever appeared in a complaint. Dense tables hold
    /// a slot for every id, but the median over an undeclared population
    /// is taken only over peers *with records* — exactly the peers the
    /// old map-backed storage held an entry for.
    seen: bool,
}

impl Tally {
    fn product(&self) -> f64 {
        (self.received + 1.0) * (self.filed + 1.0)
    }
}

/// Lazily recomputed population median, shared across concurrent
/// readers.
///
/// Mutations (`&mut self` on the model) raise `dirty`; the next
/// `median_product` call — predictions arrive in large read-only batches
/// between mutations, possibly from several metric worker threads at
/// once — recomputes the median in O(n) with `select_nth_unstable_by`
/// into a reused scratch buffer and publishes it through `bits`.
/// Concurrent recomputes are benign: the median is a pure function of
/// the (then-immutable) tallies, so every racer stores identical bits.
#[derive(Debug)]
struct MedianCache {
    /// `f64::to_bits` of the cached median; meaningful only when
    /// `dirty` is false.
    bits: AtomicU64,
    dirty: AtomicBool,
    /// Scratch for the selection pass, reused across recomputes.
    scratch: Mutex<Vec<f64>>,
}

impl Default for MedianCache {
    /// Starts dirty so the first read computes rather than trusting the
    /// placeholder bits.
    fn default() -> Self {
        MedianCache {
            bits: AtomicU64::new(1.0f64.to_bits()),
            dirty: AtomicBool::new(true),
            scratch: Mutex::new(Vec::new()),
        }
    }
}

impl MedianCache {
    fn snapshot(&self) -> MedianCache {
        // Load `dirty` before `bits`: a concurrent recompute publishes
        // bits first and clears dirty second (release), so observing
        // dirty == false guarantees the subsequent bits load is the
        // published value. The reverse order could pair stale bits with
        // a fresh clean flag.
        let dirty = self.dirty.load(Ordering::Acquire);
        MedianCache {
            bits: AtomicU64::new(self.bits.load(Ordering::Acquire)),
            dirty: AtomicBool::new(dirty),
            scratch: Mutex::new(Vec::new()),
        }
    }
}

/// The complaint-based trust model.
///
/// Direct dishonest experiences file complaints; witness reports relay
/// complaints observed elsewhere (at reduced weight). Honest experiences
/// do not generate data — faithfully to \[2\], which stores only
/// complaints.
///
/// # Examples
///
/// ```
/// use trustex_trust::complaints::{Assessment, ComplaintTrust};
/// use trustex_trust::model::{Conduct, PeerId, TrustModel};
///
/// let mut model = ComplaintTrust::new();
/// let cheater = PeerId(100);
/// // Eight victims complain about the cheater.
/// for victim in 0..8 {
///     model.file_complaint(PeerId(victim), cheater, 0);
/// }
/// assert_eq!(model.assess(cheater), Assessment::Untrustworthy);
/// assert!(model.predict(cheater).p_honest < 0.5);
/// assert_eq!(model.assess(PeerId(1)), Assessment::Trustworthy);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct ComplaintTrust {
    config: ComplaintConfig,
    /// Dense per-peer tallies, indexed by [`PeerId::index`].
    tallies: Vec<Tally>,
    /// Number of peers with `seen == true` — the size the map-backed
    /// storage used to have.
    recorded: usize,
    /// Known community size; peers without records count as product 1.0
    /// when computing the population median.
    population: Option<usize>,
    median: MedianCache,
}

impl Clone for ComplaintTrust {
    fn clone(&self) -> Self {
        ComplaintTrust {
            config: self.config,
            tallies: self.tallies.clone(),
            recorded: self.recorded,
            population: self.population,
            median: self.median.snapshot(),
        }
    }
}

impl Default for ComplaintTrust {
    fn default() -> Self {
        Self::new()
    }
}

impl ComplaintTrust {
    /// Creates a model with the default configuration.
    pub fn new() -> ComplaintTrust {
        ComplaintTrust::with_config(ComplaintConfig::default())
    }

    /// Creates a model with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `outlier_factor < 1` or `witness_weight ∉ [0, 1]`.
    pub fn with_config(config: ComplaintConfig) -> ComplaintTrust {
        assert!(config.outlier_factor >= 1.0, "outlier factor must be ≥ 1");
        assert!(
            (0.0..=1.0).contains(&config.witness_weight),
            "witness weight must be in [0, 1]"
        );
        ComplaintTrust {
            config,
            tallies: Vec::new(),
            recorded: 0,
            population: None,
            median: MedianCache::default(),
        }
    }

    /// Creates a default-configured model for a community of `n` peers:
    /// the tally table is pre-sized and the population declared (as by
    /// [`ComplaintTrust::set_population`]) in one step.
    pub fn with_population(n: usize) -> ComplaintTrust {
        let mut model = ComplaintTrust::new();
        model.set_population(n);
        model.ensure_capacity(n);
        model
    }

    /// Pre-sizes the tally table to hold peers `0..n` (never shrinks,
    /// does not declare a population). Writes beyond the capacity still
    /// grow on demand.
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.tallies.len() < n {
            self.tallies.resize(n, Tally::default());
        }
    }

    /// Declares the community size, so that complaint-free peers enter
    /// the median with the baseline product 1.0 — without it the median
    /// is taken only over peers that appear in some complaint, which
    /// overstates the baseline in quiet communities.
    pub fn set_population(&mut self, n: usize) {
        self.population = Some(n);
        self.median.dirty.store(true, Ordering::Release);
    }

    /// The active configuration.
    pub fn config(&self) -> ComplaintConfig {
        self.config
    }

    /// Records a complaint filed by `by` about `about` with unit weight.
    pub fn file_complaint(&mut self, by: PeerId, about: PeerId, _round: u64) {
        self.add_complaint(by, about, 1.0);
    }

    /// Mutable access to a peer's tally, marking it as recorded (the
    /// dense stand-in for map-entry creation).
    fn tally_mut(&mut self, peer: PeerId) -> &mut Tally {
        let slot = dense_slot(&mut self.tallies, peer);
        if !slot.seen {
            slot.seen = true;
            self.recorded += 1;
        }
        slot
    }

    fn add_complaint(&mut self, by: PeerId, about: PeerId, weight: f64) {
        self.tally_mut(about).received += weight;
        self.tally_mut(by).filed += weight;
        self.median.dirty.store(true, Ordering::Release);
    }

    /// The Laplace-shifted complaint product `T(q)`.
    pub fn complaint_product(&self, peer: PeerId) -> f64 {
        self.tallies
            .get(peer.index())
            .copied()
            .unwrap_or_default()
            .product()
    }

    /// Complaints received / filed by a peer (direct + discounted).
    pub fn tally(&self, peer: PeerId) -> (f64, f64) {
        let t = self.tallies.get(peer.index()).copied().unwrap_or_default();
        (t.received, t.filed)
    }

    /// Median complaint product over the community: peers with records
    /// contribute their product, the rest (when a population size is
    /// declared) contribute the baseline 1.0. Returns 1.0 when empty.
    ///
    /// The value is cached behind a mutation dirty-flag: recording a
    /// complaint invalidates it, the next call recomputes in O(n) via
    /// `select_nth_unstable_by` (no sort, no allocation after warm-up),
    /// and the prediction batches in between read the cached value — the
    /// per-predict cost the old sort-per-call implementation paid is
    /// amortized to O(1).
    pub fn median_product(&self) -> f64 {
        if !self.median.dirty.load(Ordering::Acquire) {
            return f64::from_bits(self.median.bits.load(Ordering::Acquire));
        }
        let median = self.compute_median();
        self.median.bits.store(median.to_bits(), Ordering::Release);
        self.median.dirty.store(false, Ordering::Release);
        median
    }

    /// The from-scratch median: O(n) selection over recorded products
    /// plus the silent-peer baseline padding.
    fn compute_median(&self) -> f64 {
        if self.recorded == 0 {
            return 1.0;
        }
        let mut products = self
            .median
            .scratch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        products.clear();
        products.extend(self.tallies.iter().filter(|t| t.seen).map(Tally::product));
        if let Some(n) = self.population {
            let silent = n.saturating_sub(products.len());
            products.extend(std::iter::repeat_n(1.0, silent));
        }
        let mid = products.len() / 2;
        let (_, median, _) = products.select_nth_unstable_by(mid, f64::total_cmp);
        *median
    }

    /// The CIKM-style binary decision: untrustworthy when the complaint
    /// product exceeds `outlier_factor ×` the population median.
    pub fn assess(&self, peer: PeerId) -> Assessment {
        let threshold = self.config.outlier_factor * self.median_product();
        if self.complaint_product(peer) > threshold {
            Assessment::Untrustworthy
        } else {
            Assessment::Trustworthy
        }
    }

    fn estimate_of(&self, tally: Tally, threshold: f64) -> TrustEstimate {
        // Smooth mapping: the farther above the median the product lies,
        // the lower the honesty estimate. At the median: ~0.5 + baseline;
        // well below: near the baseline prior of honest communities.
        let ratio = tally.product() / threshold;
        let p = 1.0 / (1.0 + ratio * ratio);
        TrustEstimate::new(p, evidence_confidence(tally.received + tally.filed))
    }
}

impl TrustModel for ComplaintTrust {
    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, _round: u64) {
        // Only negative experiences produce data: the evaluator files a
        // complaint against the subject. The evaluator's own filing
        // tally is not part of its view of *others* (the reputation
        // system tracks global filing counts; see `trustex-reputation`),
        // so only the received side is bumped here.
        if !conduct.is_honest() {
            self.tally_mut(subject).received += 1.0;
            self.median.dirty.store(true, Ordering::Release);
        }
    }

    fn record_witness(&mut self, report: WitnessReport) {
        if !report.conduct.is_honest() {
            let mut weight = self.config.witness_weight;
            if self.config.scorer_weighted {
                // Defense knob: a complainer whose own product is already
                // outlier-grade gets its relayed complaints deflated.
                weight *= self.predict(report.witness).p_honest;
            }
            self.add_complaint(report.witness, report.subject, weight);
        }
    }

    fn predict(&self, subject: PeerId) -> TrustEstimate {
        let tally = self
            .tallies
            .get(subject.index())
            .copied()
            .unwrap_or_default();
        let threshold = self.config.outlier_factor * self.median_product();
        self.estimate_of(tally, threshold)
    }

    fn predict_row_into(&self, out: &mut [TrustEstimate]) {
        // One median read (amortized O(1)) and one threshold multiply
        // serve the whole sweep.
        let threshold = self.config.outlier_factor * self.median_product();
        let covered = self.tallies.len().min(out.len());
        for (slot, tally) in out[..covered].iter_mut().zip(&self.tallies) {
            *slot = self.estimate_of(*tally, threshold);
        }
        if covered < out.len() {
            let cold = self.estimate_of(Tally::default(), threshold);
            out[covered..].fill(cold);
        }
    }

    fn forget_peer(&mut self, peer: PeerId) {
        // Clearing the tally drops both directions — complaints the peer
        // received and complaints it filed. Complaints it filed also
        // bumped *other* peers' received counts; those stay, exactly as
        // gossip already absorbed elsewhere cannot be re-attributed.
        if let Some(slot) = self.tallies.get_mut(peer.index()) {
            if slot.seen {
                *slot = Tally::default();
                self.recorded -= 1;
                self.median.dirty.store(true, Ordering::Release);
            }
        }
    }

    fn name(&self) -> &'static str {
        "complaints"
    }

    fn prepare_snapshot(&self) {
        // Force the lazy median recompute now: clones made afterwards
        // (snapshot epochs) start with a clean cache, so their readers
        // only ever do atomic loads — never the scratch-buffer mutex.
        self.median_product();
    }
}

impl Persistable for ComplaintTrust {
    const TAG: [u8; 4] = *b"CMPL";

    fn encode_state(&self, w: &mut ByteWriter) {
        w.put_f64(self.config.outlier_factor);
        w.put_f64(self.config.witness_weight);
        w.put_bool(self.config.scorer_weighted);
        match self.population {
            Some(n) => {
                w.put_bool(true);
                w.put_u64(n as u64);
            }
            None => w.put_bool(false),
        }
        w.put_len(self.tallies.len());
        for t in &self.tallies {
            w.put_f64(t.received);
            w.put_f64(t.filed);
            w.put_bool(t.seen);
        }
        // `recorded` is derived (seen-count) and the median cache is
        // lazily recomputed — neither travels.
    }

    fn decode_state(r: &mut ByteReader) -> Result<Self, PersistError> {
        let config = ComplaintConfig {
            outlier_factor: r.take_finite_f64()?,
            witness_weight: r.take_finite_f64()?,
            scorer_weighted: r.take_bool()?,
        };
        if config.outlier_factor < 1.0 {
            return Err(PersistError::Invalid {
                context: "complaint outlier factor must be ≥ 1",
            });
        }
        if !(0.0..=1.0).contains(&config.witness_weight) {
            return Err(PersistError::Invalid {
                context: "complaint witness weight must be in [0, 1]",
            });
        }
        let population = if r.take_bool()? {
            Some(r.take_u64()? as usize)
        } else {
            None
        };
        let n = r.take_len(17)?;
        let mut tallies = Vec::with_capacity(n);
        let mut recorded = 0usize;
        for _ in 0..n {
            let t = Tally {
                received: r.take_finite_f64()?,
                filed: r.take_finite_f64()?,
                seen: r.take_bool()?,
            };
            if t.received < 0.0 || t.filed < 0.0 {
                return Err(PersistError::Invalid {
                    context: "complaint tallies must be non-negative",
                });
            }
            if !t.seen && (t.received != 0.0 || t.filed != 0.0) {
                return Err(PersistError::Invalid {
                    context: "unseen peer with non-zero complaint tally",
                });
            }
            recorded += usize::from(t.seen);
            tallies.push(t);
        }
        // The median cache starts dirty: the first read recomputes it
        // from the restored tallies — a pure function, so the value is
        // bit-identical to the encoded instance's.
        Ok(ComplaintTrust {
            config,
            tallies,
            recorded,
            population,
            median: MedianCache::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_data_is_trustworthy() {
        let m = ComplaintTrust::new();
        assert!(m.assess(PeerId(1)).is_trustworthy());
        assert_eq!(m.complaint_product(PeerId(1)), 1.0);
        assert_eq!(m.median_product(), 1.0);
        let e = m.predict(PeerId(1));
        assert!(e.p_honest > 0.9, "clean record should look honest");
        assert_eq!(e.confidence, 0.0);
    }

    #[test]
    fn cheater_detected_by_received_complaints() {
        let mut m = ComplaintTrust::new();
        let cheater = PeerId(99);
        for v in 0..8 {
            m.file_complaint(PeerId(v), cheater, 0);
        }
        assert_eq!(m.assess(cheater), Assessment::Untrustworthy);
        // Victims each filed one complaint: product (0+1)(1+1)=2, median
        // stays low, so victims remain trustworthy.
        assert!(m.assess(PeerId(0)).is_trustworthy());
        assert!(m.predict(cheater).p_honest < m.predict(PeerId(0)).p_honest);
    }

    #[test]
    fn liar_detected_by_filed_complaints() {
        let mut m = ComplaintTrust::new();
        let liar = PeerId(50);
        // The liar slanders many peers; a few honest complaints exist too.
        for v in 0..10 {
            m.file_complaint(liar, PeerId(v), 0);
        }
        m.file_complaint(PeerId(1), PeerId(2), 0);
        assert_eq!(m.assess(liar), Assessment::Untrustworthy);
        // Slander victims each received one complaint; with the median at
        // (1+1)(0+1) = 2 they stay below the outlier threshold.
        assert!(m.assess(PeerId(3)).is_trustworthy());
    }

    #[test]
    fn tally_tracks_both_directions() {
        let mut m = ComplaintTrust::new();
        m.file_complaint(PeerId(1), PeerId(2), 0);
        m.file_complaint(PeerId(2), PeerId(1), 0);
        m.file_complaint(PeerId(3), PeerId(1), 0);
        let (recv, filed) = m.tally(PeerId(1));
        assert_eq!((recv, filed), (2.0, 1.0));
        assert_eq!(m.complaint_product(PeerId(1)), 6.0);
    }

    #[test]
    fn record_direct_files_only_on_dishonest() {
        let mut m = ComplaintTrust::new();
        let p = PeerId(1);
        m.record_direct(p, Conduct::Honest, 0);
        assert_eq!(m.tally(p), (0.0, 0.0));
        m.record_direct(p, Conduct::Dishonest, 0);
        assert_eq!(m.tally(p).0, 1.0);
    }

    #[test]
    fn witness_complaints_discounted() {
        let mut m = ComplaintTrust::new();
        let subject = PeerId(1);
        m.record_witness(WitnessReport {
            witness: PeerId(2),
            subject,
            conduct: Conduct::Dishonest,
            round: 0,
        });
        assert_eq!(m.tally(subject).0, 0.5, "default witness weight is 0.5");
        // Honest witness reports produce nothing.
        m.record_witness(WitnessReport {
            witness: PeerId(2),
            subject,
            conduct: Conduct::Honest,
            round: 0,
        });
        assert_eq!(m.tally(subject).0, 0.5);
    }

    #[test]
    fn probability_monotone_in_complaints() {
        let mut m = ComplaintTrust::new();
        let subject = PeerId(1);
        let mut last = m.predict(subject).p_honest;
        for v in 2..12 {
            m.file_complaint(PeerId(v), subject, 0);
            let p = m.predict(subject).p_honest;
            assert!(p <= last, "more complaints must not increase trust");
            last = p;
        }
        assert!(
            last < 0.5,
            "ten complaints should drop below coin-flip: {last}"
        );
    }

    #[test]
    fn scorer_weighting_deflates_outlier_complainers() {
        let weighted_cfg = ComplaintConfig {
            scorer_weighted: true,
            ..ComplaintConfig::default()
        };
        let mut weighted = ComplaintTrust::with_config(weighted_cfg);
        let mut plain = ComplaintTrust::new();
        let slanderer = PeerId(50);
        let victim = PeerId(1);
        // The slanderer racks up an outlier-grade filing record first.
        for m in [&mut weighted, &mut plain] {
            m.set_population(20);
            for v in 10..20 {
                m.file_complaint(slanderer, PeerId(v), 0);
            }
        }
        let report = WitnessReport {
            witness: slanderer,
            subject: victim,
            conduct: Conduct::Dishonest,
            round: 0,
        };
        weighted.record_witness(report);
        plain.record_witness(report);
        assert_eq!(plain.tally(victim).0, 0.5);
        // The slanderer's own product (11) sits far above the median
        // threshold, so p_honest(slanderer) ≈ 0.35 and the relayed
        // complaint lands at ≈ 0.17 instead of 0.5.
        let (weighted_received, _) = weighted.tally(victim);
        assert!(
            weighted_received < 0.2,
            "outlier complainer must be deflated: {weighted_received}"
        );
    }

    #[test]
    fn forget_peer_clears_the_record_and_reopens_trust() {
        let mut m = ComplaintTrust::with_population(16);
        let cheater = PeerId(7);
        for v in 0..8 {
            m.file_complaint(PeerId(v), cheater, 0);
        }
        assert_eq!(m.assess(cheater), Assessment::Untrustworthy);
        let bystander_before = m.tally(PeerId(3));
        m.forget_peer(cheater);
        assert!(m.assess(cheater).is_trustworthy(), "whitewashed record");
        assert_eq!(m.tally(cheater), (0.0, 0.0));
        assert_eq!(m.tally(PeerId(3)), bystander_before);
        // Double-forget and out-of-table ids are no-ops.
        m.forget_peer(cheater);
        m.forget_peer(PeerId(9_999));
    }

    #[test]
    #[should_panic(expected = "outlier factor")]
    fn invalid_factor_panics() {
        ComplaintTrust::with_config(ComplaintConfig {
            outlier_factor: 0.5,
            ..ComplaintConfig::default()
        });
    }

    #[test]
    fn assessment_threshold_scales_with_population() {
        // In a noisy population where everyone has a few complaints, a
        // peer with the same few complaints is NOT an outlier.
        let mut m = ComplaintTrust::new();
        for p in 0..10u32 {
            for v in 0..3u32 {
                m.file_complaint(PeerId(100 + v), PeerId(p), 0);
            }
        }
        // Everyone has 3 received: products equal, nobody untrustworthy.
        for p in 0..10u32 {
            assert!(
                m.assess(PeerId(p)).is_trustworthy(),
                "uniform noise must not flag anyone"
            );
        }
        assert_eq!(m.name(), "complaints");
    }
}
