//! Warm start: snapshot a running trust service, crash it, restore it,
//! and prove the restored service is the same service.
//!
//! ```text
//! cargo run --release --example warm_start
//! ```

use trust_aware_cooperation::market::prelude::*;
use trust_aware_cooperation::netsim::net::{NetConfig, Network};
use trust_aware_cooperation::netsim::rng::SimRng;
use trust_aware_cooperation::persist::PersistError;
use trust_aware_cooperation::reputation::pgrid::{PGrid, PGridConfig};
use trust_aware_cooperation::reputation::record::key_for_peer;
use trust_aware_cooperation::trust::beta::BetaTrust;
use trust_aware_cooperation::trust::engine::{TrustEngine, TrustEvent};
use trust_aware_cooperation::trust::model::{Conduct, PeerId, TrustEstimate};

fn main() -> Result<(), PersistError> {
    // A modest service: a 2000-peer overlay and a beta-trust engine
    // with published evidence plus a pending mid-window delta.
    let n = 2_000;
    let mut rng = SimRng::new(42);
    let grid = PGrid::build(n, PGridConfig::for_population(n, 4), &mut rng);
    let engine = TrustEngine::new(BetaTrust::with_population(n));
    for i in 0..10_000u64 {
        let subject = PeerId((i % n as u64) as u32);
        let conduct = Conduct::from_honest(i % 7 != 0);
        engine.submit(i, TrustEvent::direct(subject, conduct, i));
        if i % 2_048 == 2_047 {
            engine.publish();
        }
    }
    println!(
        "live service: {} peers, {} leaves, engine epoch {}",
        grid.live_len(),
        grid.leaf_count(),
        engine.snapshot().epoch()
    );

    // Snapshot, "crash", restore.
    let blob = snapshot_service(&grid, &engine);
    println!("snapshot: {} bytes", blob.len());
    let (grid2, engine2) = restore_service::<BetaTrust>(&blob)?;

    // Re-verify: structural invariants, identical routes, identical
    // trust rows, identical bytes.
    grid2.check_invariants();
    let mut net_a = Network::new(NetConfig::default());
    let mut net_b = Network::new(NetConfig::default());
    let mut rng_a = rng.clone();
    let mut rng_b = rng.clone();
    for probe in 0..200u32 {
        let key = key_for_peer(PeerId(probe * 37), grid.config().key_bits);
        assert_eq!(grid.responsible_peers(key), grid2.responsible_peers(key));
        let a = grid.route(0, key, None, &mut net_a, &mut rng_a);
        let b = grid2.route(0, key, None, &mut net_b, &mut rng_b);
        assert_eq!(a.map(|(p, h, _)| (p, h)), b.map(|(p, h, _)| (p, h)));
    }
    let mut live = vec![TrustEstimate::UNKNOWN; n];
    let mut back = vec![TrustEstimate::UNKNOWN; n];
    engine.snapshot().predict_row_into(&mut live);
    engine2.snapshot().predict_row_into(&mut back);
    assert!(live
        .iter()
        .zip(&back)
        .all(|(l, b)| l.p_honest == b.p_honest && l.confidence == b.confidence));
    assert_eq!(snapshot_service(&grid2, &engine2), blob);
    println!("restored service verified: routes, trust rows and bytes identical");

    // Crash recovery: every corruption class is a typed error.
    let mut torn = blob.clone();
    torn.truncate(blob.len() / 2);
    println!(
        "truncated tail  -> {}",
        restore_service::<BetaTrust>(&torn).unwrap_err()
    );
    let mut flipped = blob.clone();
    flipped[blob.len() / 3] ^= 0x08;
    println!(
        "bit flip        -> {}",
        restore_service::<BetaTrust>(&flipped).unwrap_err()
    );
    let mut future = blob.clone();
    future[4] = future[4].wrapping_add(1);
    println!(
        "future version  -> {}",
        restore_service::<BetaTrust>(&future).unwrap_err()
    );
    Ok(())
}
