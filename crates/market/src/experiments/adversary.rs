//! The adversary-zoo robustness frontier (E11).
//!
//! The paper's trust models were evaluated against *independent* liars
//! and defectors; this experiment measures what coordination buys an
//! attacker. The full zoo ([`trustex_agents::adversary`]) — collusion
//! rings, targeted slander cells, Sybil amplification, oscillating
//! defectors and whitewashers — is swept over attacker fraction ×
//! coordination level, with the community defenses
//! ([`crate::population::DefenseConfig`]) off and on, for every trust
//! model. Market efficiency is reported relative to the clean-market arm
//! of the same (model, defense), so the frontier reads directly as
//! "fraction of welfare the attack destroys".

use super::community::run_arms;
use super::Scale;
use crate::population::{DefenseConfig, ModelKind};
use crate::sim::MarketConfig;
use crate::table::Table;
use crate::workload::Workload;
use trustex_agents::adversary::zoo_mix;

fn base_cfg(scale: Scale) -> MarketConfig {
    MarketConfig {
        n_agents: scale.pick(40, 150),
        rounds: scale.pick(8, 40),
        sessions_per_round: scale.pick(40, 150),
        workload: Workload::FileSharing,
        seed: 17,
        ..MarketConfig::default()
    }
}

/// E11 — *Table R6*: rank/decision accuracy and market efficiency per
/// trust model as the adversary zoo scales in size (attacker fraction)
/// and coordination, with defenses off and on.
pub fn e11_adversaries(scale: Scale) -> Table {
    let fractions: &[f64] = scale.pick(&[0.0, 0.3][..], &[0.0, 0.1, 0.2, 0.3, 0.45][..]);
    let coordinations: &[f64] = scale.pick(&[0.0, 1.0][..], &[0.0, 0.5, 1.0][..]);
    let defenses = [
        ("off", DefenseConfig::default()),
        (
            "on",
            DefenseConfig {
                scorer_weighted: true,
                report_rate_cap: Some(8),
            },
        ),
    ];
    let mut table = Table::new(
        "E11: adversary-zoo robustness frontier (attacker fraction × coordination)",
        &[
            "model",
            "defense",
            "attackers",
            "coordination",
            "rank_acc",
            "decision_acc",
            "welfare/sess",
            "honest_losses/sess",
            "efficiency",
        ],
    );
    let mut labels = Vec::new();
    let mut arms = Vec::new();
    for model in ModelKind::ALL {
        for (defense_label, defense) in defenses {
            for &frac in fractions {
                // A clean market has no one to coordinate: one arm.
                let coords: &[f64] = if frac == 0.0 { &[0.0] } else { coordinations };
                for &coordination in coords {
                    labels.push((model, defense_label, frac, coordination));
                    arms.push(MarketConfig {
                        mix: zoo_mix(frac, coordination),
                        model,
                        defense,
                        ..base_cfg(scale)
                    });
                }
            }
        }
    }
    // The defense ladder: at the hardest arm (largest attacker fraction,
    // full coordination), how tight must the per-reporter rate cap be
    // before the attack stops paying? One arm per cap, scorer weighting
    // on throughout, on the `mean` model (the one with no built-in
    // witness discounting, so the cap does all the work).
    let ladder_frac = *fractions.last().expect("fraction sweep is nonempty");
    let ladder: [(&str, Option<u32>); 5] = [
        ("cap=1", Some(1)),
        ("cap=2", Some(2)),
        ("cap=4", Some(4)),
        ("cap=8", Some(8)),
        ("cap=inf", None),
    ];
    for (label, cap) in ladder {
        labels.push((ModelKind::Mean, label, ladder_frac, 1.0));
        arms.push(MarketConfig {
            mix: zoo_mix(ladder_frac, 1.0),
            model: ModelKind::Mean,
            defense: DefenseConfig {
                scorer_weighted: true,
                report_rate_cap: cap,
            },
            ..base_cfg(scale)
        });
    }
    let reports = run_arms(arms);
    // Clean-market welfare per (model, defense): the frac = 0 arm leads
    // its block, so a linear scan fills the reference before any row
    // that divides by it.
    let mut reference: Vec<((ModelKind, &str), f64)> = Vec::new();
    for ((model, defense_label, frac, _), r) in labels.iter().zip(&reports) {
        if *frac == 0.0 {
            reference.push(((*model, defense_label), r.welfare_per_session()));
        }
    }
    // Ladder arms (defense label "cap=…") have no clean arm of their
    // own; their efficiency reads against the defended clean market.
    let clean_welfare = |model: ModelKind, defense_label: &str| {
        let find = |d: &str| {
            reference
                .iter()
                .find(|((m, label), _)| *m == model && *label == d)
                .map(|(_, w)| *w)
        };
        find(defense_label)
            .or_else(|| find("on"))
            .expect("fraction sweep starts at 0")
    };
    for ((model, defense_label, frac, coordination), r) in labels.iter().zip(&reports) {
        let baseline = clean_welfare(*model, defense_label);
        let welfare = r.welfare_per_session();
        let efficiency = if baseline > 0.0 {
            welfare / baseline
        } else {
            0.0
        };
        let sessions = r.sessions.max(1) as f64;
        table.push_row(vec![
            model.label().into(),
            (*defense_label).into(),
            (*frac).into(),
            (*coordination).into(),
            r.final_rank_accuracy.into(),
            r.final_decision_accuracy.into(),
            welfare.into(),
            (r.honest_losses / sessions).into(),
            efficiency.into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn num(cell: &Cell) -> f64 {
        match cell {
            Cell::Num(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(t) => panic!("expected number, got {t}"),
        }
    }

    fn text(cell: &Cell) -> &str {
        match cell {
            Cell::Text(t) => t,
            other => panic!("expected text, got {other:?}"),
        }
    }

    #[test]
    fn e11_covers_the_full_frontier() {
        let t = e11_adversaries(Scale::Smoke);
        // 4 models × 2 defenses × (1 clean + 1 fraction × 2 coords),
        // plus the 5-rung rate-cap ladder.
        assert_eq!(t.rows().len(), 4 * 2 * 3 + 5);
        for model in ModelKind::ALL {
            for defense in ["off", "on"] {
                let rows = t
                    .rows()
                    .iter()
                    .filter(|r| text(&r[0]) == model.label() && text(&r[1]) == defense)
                    .count();
                assert_eq!(rows, 3, "{model:?}/{defense}");
            }
        }
    }

    #[test]
    fn e11_clean_market_efficiency_is_unity() {
        let t = e11_adversaries(Scale::Smoke);
        for row in t.rows() {
            if num(&row[2]) == 0.0 {
                assert!(
                    (num(&row[8]) - 1.0).abs() < 1e-12,
                    "clean arm must be its own reference: {row:?}"
                );
            }
            assert!(num(&row[8]).is_finite());
            assert!((0.0..=1.0).contains(&num(&row[4])), "rank acc: {row:?}");
            assert!((0.0..=1.0).contains(&num(&row[5])), "decision acc: {row:?}");
        }
    }

    #[test]
    fn e11_the_zoo_actually_hurts() {
        let t = e11_adversaries(Scale::Smoke);
        let row = |defense: &str, frac: f64, coord: f64| {
            t.rows()
                .iter()
                .find(|r| {
                    text(&r[0]) == "mean"
                        && text(&r[1]) == defense
                        && (num(&r[2]) - frac).abs() < 1e-9
                        && (num(&r[3]) - coord).abs() < 1e-9
                })
                .expect("row present")
        };
        let clean = row("off", 0.0, 0.0);
        let attacked = row("off", 0.3, 1.0);
        // A clean market decides perfectly and honest agents lose
        // nothing; a coordinated 30% attack must visibly cost both.
        assert_eq!(num(&clean[5]), 1.0, "clean decision accuracy");
        assert_eq!(num(&clean[7]), 0.0, "clean honest losses");
        assert!(num(&attacked[5]) < 1.0, "attacked decision accuracy");
        assert!(num(&attacked[7]) > 0.0, "attacked honest losses");
        assert!(num(&attacked[8]) < 1.0, "attacked efficiency");
    }

    /// The rate-cap ladder: one row per cap at the hardest arm, every
    /// metric finite and within range — and capping at all (cap=8) must
    /// not do worse than no cap against a Sybil-amplified flood.
    #[test]
    fn e11_defense_ladder_has_a_rung_per_cap() {
        let t = e11_adversaries(Scale::Smoke);
        let rung = |label: &str| {
            t.rows()
                .iter()
                .find(|r| text(&r[1]) == label)
                .unwrap_or_else(|| panic!("missing ladder rung {label}"))
                .clone()
        };
        for label in ["cap=1", "cap=2", "cap=4", "cap=8", "cap=inf"] {
            let row = rung(label);
            assert_eq!(text(&row[0]), "mean");
            assert!((num(&row[3]) - 1.0).abs() < 1e-12, "full coordination");
            assert!((0.0..=1.0).contains(&num(&row[4])), "rank acc: {row:?}");
            assert!(num(&row[8]).is_finite(), "efficiency: {row:?}");
        }
        assert!(
            num(&rung("cap=8")[4]) >= num(&rung("cap=inf")[4]) - 0.05,
            "a sane cap must not lose rank accuracy vs uncapped"
        );
    }
}
