//! The community: agent profiles paired with per-agent trust models.
//!
//! Every agent owns its own [`TrustModel`] instance (trust is
//! subjective), selected by [`ModelKind`]. The community also maintains
//! the witness-corroboration bookkeeping that lets the beta model grade
//! its informants.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use trustex_agents::profile::{AgentProfile, PopulationMix};
use trustex_netsim::hash::FxBuildHasher;
use trustex_netsim::rng::SimRng;
use trustex_trust::baselines::{EwmaTrust, MeanTrust};
use trustex_trust::beta::BetaTrust;
use trustex_trust::complaints::ComplaintTrust;
use trustex_trust::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};

/// Which trust model every agent runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Bayesian beta posterior (Mui et al.).
    Beta,
    /// Complaint-product metric (Aberer–Despotovic).
    Complaints,
    /// Arithmetic mean baseline.
    Mean,
    /// EWMA baseline.
    Ewma,
}

impl ModelKind {
    /// All kinds, for sweeps.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Beta,
        ModelKind::Complaints,
        ModelKind::Mean,
        ModelKind::Ewma,
    ];

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Beta => "beta",
            ModelKind::Complaints => "complaints",
            ModelKind::Mean => "mean",
            ModelKind::Ewma => "ewma",
        }
    }

    /// Builds a model pre-sized for a community of `n` peers: every
    /// model's dense evidence tables are allocated once up front (and
    /// the complaint model learns the population for its median), so
    /// the simulation's record/predict hot paths never grow storage.
    fn build(self, n: usize) -> AnyModel {
        match self {
            ModelKind::Beta => AnyModel::Beta(BetaTrust::with_population(n)),
            ModelKind::Complaints => AnyModel::Complaints(ComplaintTrust::with_population(n)),
            ModelKind::Mean => AnyModel::Mean(MeanTrust::with_population(n)),
            ModelKind::Ewma => AnyModel::Ewma(EwmaTrust::with_population(0.2, n)),
        }
    }
}

/// A concrete trust model of any supported kind.
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// Bayesian beta posterior.
    Beta(BetaTrust),
    /// Complaint-product metric.
    Complaints(ComplaintTrust),
    /// Mean baseline.
    Mean(MeanTrust),
    /// EWMA baseline.
    Ewma(EwmaTrust),
}

impl TrustModel for AnyModel {
    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, round: u64) {
        match self {
            AnyModel::Beta(m) => m.record_direct(subject, conduct, round),
            AnyModel::Complaints(m) => m.record_direct(subject, conduct, round),
            AnyModel::Mean(m) => m.record_direct(subject, conduct, round),
            AnyModel::Ewma(m) => m.record_direct(subject, conduct, round),
        }
    }

    fn record_witness(&mut self, report: WitnessReport) {
        match self {
            AnyModel::Beta(m) => m.record_witness(report),
            AnyModel::Complaints(m) => m.record_witness(report),
            AnyModel::Mean(m) => m.record_witness(report),
            AnyModel::Ewma(m) => m.record_witness(report),
        }
    }

    fn predict(&self, subject: PeerId) -> TrustEstimate {
        match self {
            AnyModel::Beta(m) => m.predict(subject),
            AnyModel::Complaints(m) => m.predict(subject),
            AnyModel::Mean(m) => m.predict(subject),
            AnyModel::Ewma(m) => m.predict(subject),
        }
    }

    fn predict_row_into(&self, out: &mut [TrustEstimate]) {
        // One dispatch per row (not per cell) into the models' dense
        // table sweeps.
        match self {
            AnyModel::Beta(m) => m.predict_row_into(out),
            AnyModel::Complaints(m) => m.predict_row_into(out),
            AnyModel::Mean(m) => m.predict_row_into(out),
            AnyModel::Ewma(m) => m.predict_row_into(out),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyModel::Beta(m) => m.name(),
            AnyModel::Complaints(m) => m.name(),
            AnyModel::Mean(m) => m.name(),
            AnyModel::Ewma(m) => m.name(),
        }
    }
}

impl AnyModel {
    /// Grades a witness (no-op for models without witness reliability).
    pub fn grade_witness(&mut self, witness: PeerId, corroborated: bool, round: u64) {
        if let AnyModel::Beta(m) = self {
            m.grade_witness(witness, corroborated, round);
        }
    }
}

/// The community of agents.
#[derive(Debug)]
pub struct Community {
    profiles: Vec<AgentProfile>,
    models: Vec<AnyModel>,
    /// Witness reports awaiting corroboration:
    /// `(evaluator, subject) → [(witness, claimed conduct)]`.
    ///
    /// Point lookups only (insert on delivery, remove on corroboration,
    /// order-insensitive count) — safe for the fast non-SipHash hasher,
    /// which takes this ride-along off the record hot path's profile.
    pending: HashMap<(PeerId, PeerId), Vec<(PeerId, Conduct)>, FxBuildHasher>,
}

impl Community {
    /// Samples a community of `n` agents from `mix`, all running `kind`
    /// trust models.
    pub fn new(n: usize, mix: &PopulationMix, kind: ModelKind, rng: &mut SimRng) -> Community {
        let profiles = mix.sample(n, rng);
        let models = (0..n).map(|_| kind.build(n)).collect();
        Community {
            profiles,
            models,
            pending: HashMap::default(),
        }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the community is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile of an agent.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn profile(&self, agent: PeerId) -> AgentProfile {
        self.profiles[agent.index()]
    }

    /// Read access to an agent's trust model.
    pub fn model(&self, agent: PeerId) -> &AnyModel {
        &self.models[agent.index()]
    }

    /// `evaluator`'s trust estimate of `subject`.
    pub fn predict(&self, evaluator: PeerId, subject: PeerId) -> TrustEstimate {
        self.models[evaluator.index()].predict(subject)
    }

    /// Fills `out[i]` with `evaluator`'s estimate of subject `PeerId(i)`
    /// in one dense-table sweep — bit-identical to calling
    /// [`Community::predict`] per subject, and the read path the batched
    /// accuracy metrics are built on.
    ///
    /// # Panics
    ///
    /// Panics if `evaluator` is out of range.
    pub fn predict_row_into(&self, evaluator: PeerId, out: &mut [TrustEstimate]) {
        self.models[evaluator.index()].predict_row_into(out);
    }

    /// Ground truth cooperation probability of an agent.
    pub fn true_cooperation_prob(&self, agent: PeerId) -> f64 {
        self.profiles[agent.index()]
            .exchange
            .true_cooperation_prob()
    }

    /// Whether an agent is fundamentally honest (ground truth).
    pub fn is_honest(&self, agent: PeerId) -> bool {
        self.profiles[agent.index()]
            .exchange
            .is_fundamentally_honest()
    }

    /// Records `evaluator`'s direct experience with `subject` and grades
    /// any pending witness reports about `subject` against it.
    pub fn record_direct(
        &mut self,
        evaluator: PeerId,
        subject: PeerId,
        conduct: Conduct,
        round: u64,
    ) {
        self.models[evaluator.index()].record_direct(subject, conduct, round);
        if let Some(reports) = self.pending.remove(&(evaluator, subject)) {
            for (witness, claimed) in reports {
                self.models[evaluator.index()].grade_witness(witness, claimed == conduct, round);
            }
        }
    }

    /// Delivers a witness report to `target`'s model and queues it for
    /// corroboration.
    pub fn deliver_witness_report(&mut self, target: PeerId, report: WitnessReport) {
        self.models[target.index()].record_witness(report);
        self.pending
            .entry((target, report.subject))
            .or_default()
            .push((report.witness, report.conduct));
    }

    /// Iterates over all agent ids.
    pub fn agent_ids(&self) -> impl ExactSizeIterator<Item = PeerId> {
        (0..self.profiles.len() as u32).map(PeerId)
    }

    /// Total witness reports queued for corroboration — an observable
    /// delivery count for gossip fan-out tests.
    pub fn pending_report_count(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustex_agents::behavior::ExchangeBehavior;

    fn community(kind: ModelKind) -> Community {
        let mut rng = SimRng::new(1);
        let mix = PopulationMix::standard(0.5, 0.0);
        Community::new(20, &mix, kind, &mut rng)
    }

    #[test]
    fn construction() {
        let c = community(ModelKind::Beta);
        assert_eq!(c.len(), 20);
        assert!(!c.is_empty());
        let honest = c.agent_ids().filter(|a| c.is_honest(*a)).count();
        assert_eq!(honest, 10);
    }

    #[test]
    fn ground_truth_matches_profile() {
        let c = community(ModelKind::Beta);
        for a in c.agent_ids() {
            let p = c.profile(a);
            if p.exchange == ExchangeBehavior::Honest {
                assert_eq!(c.true_cooperation_prob(a), 1.0);
            } else {
                assert_eq!(c.true_cooperation_prob(a), 0.0);
            }
        }
    }

    #[test]
    fn direct_experience_moves_estimates() {
        for kind in ModelKind::ALL {
            let mut c = community(kind);
            let (a, b) = (PeerId(0), PeerId(1));
            let before = c.predict(a, b).p_honest;
            for r in 0..5 {
                c.record_direct(a, b, Conduct::Dishonest, r);
            }
            let after = c.predict(a, b).p_honest;
            assert!(after < before, "{kind:?}: {before} -> {after}");
        }
    }

    #[test]
    fn witness_reports_are_queued_and_graded() {
        let mut c = community(ModelKind::Beta);
        let (evaluator, witness, subject) = (PeerId(0), PeerId(1), PeerId(2));
        // An accurate witness earns reliability once corroborated.
        c.deliver_witness_report(
            evaluator,
            WitnessReport {
                witness,
                subject,
                conduct: Conduct::Dishonest,
                round: 0,
            },
        );
        c.record_direct(evaluator, subject, Conduct::Dishonest, 1);
        if let AnyModel::Beta(m) = c.model(evaluator) {
            assert!(
                m.witness_reliability(witness) > 0.5,
                "corroborated witness gains reliability"
            );
        } else {
            panic!("expected beta model");
        }
        // Pending entry consumed.
        assert!(c.pending.is_empty());
    }

    #[test]
    fn contradicted_witness_downgraded() {
        let mut c = community(ModelKind::Beta);
        let (evaluator, witness, subject) = (PeerId(0), PeerId(1), PeerId(2));
        c.deliver_witness_report(
            evaluator,
            WitnessReport {
                witness,
                subject,
                conduct: Conduct::Dishonest,
                round: 0,
            },
        );
        c.record_direct(evaluator, subject, Conduct::Honest, 1);
        if let AnyModel::Beta(m) = c.model(evaluator) {
            assert!(m.witness_reliability(witness) < 0.5);
        } else {
            panic!("expected beta model");
        }
    }

    #[test]
    fn model_kind_labels_and_names() {
        for kind in ModelKind::ALL {
            let c = community(kind);
            assert_eq!(c.model(PeerId(0)).name(), kind.label());
        }
    }

    #[test]
    fn grade_witness_noop_for_baselines() {
        let mut c = community(ModelKind::Mean);
        // Must not panic or change predictions.
        let before = c.predict(PeerId(0), PeerId(5));
        c.deliver_witness_report(
            PeerId(0),
            WitnessReport {
                witness: PeerId(1),
                subject: PeerId(5),
                conduct: Conduct::Honest,
                round: 0,
            },
        );
        c.record_direct(PeerId(0), PeerId(5), Conduct::Honest, 1);
        assert!(c.predict(PeerId(0), PeerId(5)).p_honest >= before.p_honest);
    }
}
