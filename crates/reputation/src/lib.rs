//! # trustex-reputation — reputation management over P-Grid
//!
//! The "reputation management" module of the reference architecture in
//! *Trust-Aware Cooperation* (Figure 1), built the way the paper's
//! reference \[2\] (Aberer & Despotovic, CIKM 2001) does it: complaints
//! stored decentrally in a **P-Grid** — a binary-trie-structured P2P
//! overlay with replication — queried with `O(log N)` messages and
//! resolved against lying storage peers by majority voting.
//!
//! * [`record`] — complaints, binary keys, trie paths.
//! * [`pgrid`] — the distributed trie: emergent bootstrap, greedy
//!   routing, replicated inserts and queries with message accounting,
//!   plus true membership dynamics (`join`/`leave`).
//! * [`lifecycle`] — admission pacing over the grid: join backoff,
//!   bounded admission rate, stale-peer eviction.
//! * [`resolve`] — majority/median resolution against lying replicas.
//! * [`system`] — the facade the market simulation uses
//!   ([`system::ReputationSystem`]), plus the centralized baseline.
//!
//! ```
//! use trustex_reputation::prelude::*;
//! use trustex_trust::model::PeerId;
//!
//! let mut sys = ReputationSystem::new(64, ReputationConfig::default(), 42);
//! sys.file_complaint(PeerId(3), PeerId(9), 0, None);
//! let tally = sys.query_tally(PeerId(1), PeerId(9), None).expect("resolved");
//! assert_eq!(tally.received, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lifecycle;
pub mod pgrid;
pub mod record;
pub mod resolve;
pub mod system;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::lifecycle::{Lifecycle, LifecycleConfig, TickReport};
    pub use crate::pgrid::{InsertReceipt, PGrid, PGridConfig, QueryResult};
    pub use crate::record::{key_for_peer, BitPath, Complaint, Key};
    pub use crate::resolve::{majority_vote, median_count, StorageBehavior};
    pub use crate::system::{CentralStore, ReputationConfig, ReputationSystem, TallyReport};
}
