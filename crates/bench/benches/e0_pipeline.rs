//! E0 bench: the full reference-model pipeline at smoke scale — an
//! end-to-end regression guard for the whole stack's throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use trustex_market::experiments::{e0_pipeline, Scale};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e0/pipeline");
    group.sample_size(10);
    group.bench_function("smoke", |b| b.iter(|| black_box(e0_pipeline(Scale::Smoke))));
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
