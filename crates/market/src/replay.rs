//! The service replay driver: millions of interleaved query/feedback
//! events against the epoch-swapped trust engine, reported as
//! throughput and latency percentiles.
//!
//! The experiment suite times experiments as wall-clock totals; a
//! service cares about *per-request* latency under a live write stream.
//! This driver generates a deterministic event stream from the pinned
//! RNG (queries and feedback interleaved), plays it against a
//! [`TrustEngine`] in fixed-size windows — queries of a window fan
//! across the worker pool against the window's snapshot while feedback
//! accumulates in the pending delta, then the window boundary publishes
//! the next epoch — and reports throughput plus p50/p99/p999 query
//! latency via [`trustex_netsim::stats`].
//!
//! Determinism contract: everything *content-shaped* in the outcome
//! (event counts, epochs, the prediction checksum — [`ReplayCheck`]) is
//! a pure function of the seed, bit-identical for any thread count:
//! queries only read published epochs, the checksum folds in submission
//! order, and the publish fold is pinned by event sequence numbers.
//! The latency fields are wall-clock and machine-dependent by design.

use crate::population::ModelKind;
use std::time::Instant;
use trustex_netsim::pool::{parallel_map, resolve_threads};
use trustex_netsim::rng::SimRng;
use trustex_netsim::stats::{Histogram, Sample};
use trustex_trust::engine::{TrustEngine, TrustEvent};
use trustex_trust::model::{Conduct, PeerId, TrustEstimate, WitnessReport};

/// Configuration of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Community size served by the engine (subjects per query sweep).
    pub n_peers: usize,
    /// Total interleaved events to replay.
    pub events: usize,
    /// Probability an event is a query (the rest stream feedback).
    pub query_share: f64,
    /// Events per epoch window: each window's queries read the previous
    /// publish, and its feedback is folded at the window boundary.
    pub window: usize,
    /// Trust model behind the engine.
    pub model: ModelKind,
    /// Master seed for the event stream.
    pub seed: u64,
    /// Worker threads for the query fan-out (0 = process default).
    pub threads: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            n_peers: 100,
            events: 10_000,
            query_share: 0.8,
            window: 1000,
            model: ModelKind::Beta,
            seed: 17,
            threads: 0,
        }
    }
}

/// The deterministic part of a replay outcome: bit-identical for any
/// thread count (pinned by the cross-thread determinism suite).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCheck {
    /// Events replayed (queries + feedback).
    pub events: u64,
    /// Query events served.
    pub queries: u64,
    /// Feedback events folded (direct + witness).
    pub feedbacks: u64,
    /// Epochs published (one per window).
    pub epochs: u64,
    /// Submission-order fold of every query's probed estimate plus a
    /// final-epoch row sum — any divergence in any served prediction
    /// moves it.
    pub checksum: f64,
}

/// The full replay outcome: the deterministic [`ReplayCheck`] plus
/// wall-clock throughput and latency percentiles.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The deterministic outcome.
    pub check: ReplayCheck,
    /// Total wall-clock seconds for the replay loop.
    pub wall_s: f64,
    /// Median query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile query latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile query latency, microseconds.
    pub p999_us: f64,
    /// Query latency distribution (µs buckets, edge-clamped).
    pub histogram: Histogram,
}

impl ReplayReport {
    /// Events per second over the whole replay loop.
    pub fn throughput(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.check.events as f64 / self.wall_s
        }
    }
}

/// One query: a full-row sweep (the service's "page of estimates"
/// request), with `probe`'s estimate folded into the checksum.
struct Query {
    probe: PeerId,
}

/// Replays `cfg.events` interleaved query/feedback events against a
/// fresh [`TrustEngine`] and reports throughput, latency percentiles
/// and the deterministic [`ReplayCheck`].
///
/// # Panics
///
/// Panics if `n_peers`, `events` or `window` is zero.
pub fn replay(cfg: &ReplayConfig) -> ReplayReport {
    assert!(
        cfg.n_peers > 0 && cfg.events > 0 && cfg.window > 0,
        "replay needs peers, events and a window"
    );
    let n = cfg.n_peers;
    let threads = resolve_threads(cfg.threads);
    let mut rng = SimRng::new(cfg.seed);
    // Ground-truth honesty per peer: feedback conduct is drawn from it,
    // so the engine converges on something predictable.
    let honesty: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
    let engine = TrustEngine::new(cfg.model.build(n));

    let mut check = ReplayCheck {
        events: 0,
        queries: 0,
        feedbacks: 0,
        epochs: 0,
        checksum: 0.0,
    };
    let mut latency = Sample::new();
    let mut histogram = Histogram::new(0.0, 50.0, 50);
    let mut remaining = cfg.events;
    let mut seq: u64 = 0;
    let started = Instant::now();
    while remaining > 0 {
        // Draw one window of events from the master stream
        // (sequentially, so stream consumption is schedule-independent).
        let window = cfg.window.min(remaining);
        remaining -= window;
        let round = check.epochs;
        let mut queries: Vec<Query> = Vec::with_capacity(window);
        for _ in 0..window {
            seq += 1;
            if rng.chance(cfg.query_share) {
                queries.push(Query {
                    probe: PeerId(rng.index(n) as u32),
                });
            } else {
                let subject = PeerId(rng.index(n) as u32);
                let conduct = Conduct::from_honest(rng.chance(honesty[subject.index()]));
                let event = if rng.chance(0.25) {
                    TrustEvent::Witness(WitnessReport {
                        witness: PeerId(rng.index(n) as u32),
                        subject,
                        conduct,
                        round,
                    })
                } else {
                    TrustEvent::direct(subject, conduct, round)
                };
                engine.submit(seq, event);
                check.feedbacks += 1;
            }
        }
        check.queries += queries.len() as u64;

        // Fan the window's queries across the pool against the current
        // snapshot. Results come back in submission order, so the
        // checksum fold below is thread-count-independent.
        let snapshot = engine.snapshot();
        let snapshot = &snapshot;
        let chunk_len = queries.len().div_ceil(threads.max(1) * 4).max(1);
        let mut chunks: Vec<Vec<Query>> = Vec::new();
        let mut rest = queries.into_iter();
        loop {
            let chunk: Vec<Query> = rest.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let served: Vec<Vec<(f64, f64)>> = parallel_map(threads, chunks, |_, chunk| {
            let mut row = vec![TrustEstimate::UNKNOWN; n];
            chunk
                .into_iter()
                .map(|query| {
                    let t0 = Instant::now();
                    snapshot.predict_row_into(&mut row);
                    let probed = row[query.probe.index()].p_honest;
                    let us = t0.elapsed().as_nanos() as f64 / 1_000.0;
                    (std::hint::black_box(probed), us)
                })
                .collect()
        });
        for (probed, us) in served.into_iter().flatten() {
            check.checksum += probed;
            latency.push(us);
            histogram.record(us);
        }

        // Window boundary: fold the pending delta (pinned seq order)
        // and rotate the epoch.
        engine.publish();
        check.epochs += 1;
    }
    let wall_s = started.elapsed().as_secs_f64();

    // Fold the final epoch into the checksum so post-replay state — not
    // just served queries — is pinned too.
    let mut row = vec![TrustEstimate::UNKNOWN; n];
    engine.snapshot().predict_row_into(&mut row);
    for estimate in &row {
        check.checksum += estimate.p_honest;
    }
    check.events = check.queries + check.feedbacks;

    ReplayReport {
        p50_us: latency.quantile(0.5).unwrap_or(0.0),
        p99_us: latency.quantile(0.99).unwrap_or(0.0),
        p999_us: latency.quantile(0.999).unwrap_or(0.0),
        check,
        wall_s,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(model: ModelKind) -> ReplayConfig {
        ReplayConfig {
            n_peers: 30,
            events: 2000,
            window: 250,
            model,
            threads: 1,
            ..ReplayConfig::default()
        }
    }

    #[test]
    fn replay_accounts_every_event() {
        for model in ModelKind::ALL {
            let r = replay(&small(model));
            assert_eq!(r.check.events, 2000, "{model:?}");
            assert_eq!(r.check.events, r.check.queries + r.check.feedbacks);
            assert_eq!(r.check.epochs, 8, "2000 events / 250-event windows");
            assert_eq!(r.histogram.total(), r.check.queries);
            assert!(r.check.queries > r.check.feedbacks, "query_share 0.8");
            assert!(r.p50_us <= r.p99_us && r.p99_us <= r.p999_us);
            assert!(r.throughput() > 0.0);
            assert!(r.check.checksum.is_finite());
        }
    }

    #[test]
    fn replay_check_is_seed_deterministic() {
        let a = replay(&small(ModelKind::Complaints));
        let b = replay(&small(ModelKind::Complaints));
        assert_eq!(a.check, b.check);
        let other = replay(&ReplayConfig {
            seed: 18,
            ..small(ModelKind::Complaints)
        });
        assert_ne!(a.check.checksum, other.check.checksum);
    }

    #[test]
    fn replay_check_is_thread_invariant() {
        let reference = replay(&small(ModelKind::Beta));
        for threads in [2, 8] {
            let r = replay(&ReplayConfig {
                threads,
                ..small(ModelKind::Beta)
            });
            assert_eq!(r.check, reference.check, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "replay needs")]
    fn zero_events_rejected() {
        replay(&ReplayConfig {
            events: 0,
            ..ReplayConfig::default()
        });
    }
}
