//! Virtual simulation time.
//!
//! [`SimTime`] is a monotone tick counter with microsecond granularity.
//! All latency models and churn timelines in this workspace are expressed
//! in `SimTime`; nothing in the simulator reads the wall clock.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, counted in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use trustex_netsim::time::SimTime;
/// let t = SimTime::from_millis(2) + SimTime::from_micros(500);
/// assert_eq!(t.as_micros(), 2_500);
/// assert_eq!(format!("{t}"), "2.500ms");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow (more than ~584 000 years of simulated time).
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the time in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, other: SimTime) -> Option<SimTime> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`SimTime::saturating_sub`] when the
    /// ordering is not statically known.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 1_000_000 {
            write!(f, "{}.{:03}s", us / 1_000_000, (us % 1_000_000) / 1_000)
        } else if us >= 1_000 {
            write!(f, "{}.{:03}ms", us / 1_000, us % 1_000)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::ZERO.as_micros(), 0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!((a + b).as_millis(), 8);
        assert_eq!((a - b).as_millis(), 2);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 8);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_millis(1));
    }

    #[test]
    fn checked_add_overflow() {
        let max = SimTime::from_micros(u64::MAX);
        assert_eq!(max.checked_add(SimTime::from_micros(1)), None);
        assert!(SimTime::ZERO.checked_add(max).is_some());
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::ZERO <= SimTime::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_micros(7)), "7us");
        assert_eq!(format!("{}", SimTime::from_micros(2_500)), "2.500ms");
        assert_eq!(format!("{}", SimTime::from_micros(3_250_000)), "3.250s");
    }

    #[test]
    fn as_secs_f64_roundtrip() {
        let t = SimTime::from_millis(1_500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
