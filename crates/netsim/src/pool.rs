//! A deterministic `std::thread` worker pool for embarrassingly parallel
//! simulation work.
//!
//! The experiment harness and the market simulator both fan independent
//! jobs (experiment arms, pre-drawn exchange sessions) across threads and
//! reassemble the results **in submission order**, so the output of
//! [`parallel_map`] is bit-identical for every thread count — parallelism
//! changes wall-clock time, never results. The build environment has no
//! crates.io access, so this is plain `std::thread::scope` + channels
//! rather than rayon.
//!
//! Thread-count resolution is layered: an explicit per-call request wins,
//! then a process-wide override ([`set_default_threads`], set e.g. by the
//! `repro --threads` flag), then the `TRUSTEX_THREADS` environment
//! variable, then [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! use trustex_netsim::pool::parallel_map;
//! let squares = parallel_map(4, (0..100u64).collect(), |i, x| (i as u64) + x * x);
//! assert_eq!(squares[7], 7 + 49);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};
use std::thread;

/// Process-wide default thread count; 0 means "not set".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default thread count (0 clears the override,
/// falling back to `TRUSTEX_THREADS` / detected parallelism).
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::SeqCst);
}

/// The process-wide default thread count: the [`set_default_threads`]
/// override if set, else `TRUSTEX_THREADS` if parseable and non-zero,
/// else the detected hardware parallelism (at least 1).
pub fn default_threads() -> usize {
    let forced = DEFAULT_THREADS.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    static ENV: OnceLock<usize> = OnceLock::new();
    let env = *ENV.get_or_init(|| {
        std::env::var("TRUSTEX_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    });
    if env > 0 {
        return env;
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a requested thread count: 0 means "use the default".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested
    }
}

/// Maps `f` over `items` on up to `threads` worker threads and returns
/// the results **in input order** — bit-identical to the sequential map
/// for any thread count. `f` receives `(index, item)`.
///
/// Jobs are pulled from a shared queue, so uneven job costs balance
/// across workers. A panic in any job propagates to the caller.
pub fn parallel_map<I, T, F>(threads: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    let workers = resolve_threads(threads).min(n.max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }

    let (job_tx, job_rx) = mpsc::channel::<(usize, I)>();
    for pair in items.into_iter().enumerate() {
        job_tx.send(pair).expect("queue jobs");
    }
    drop(job_tx);
    let job_rx = Mutex::new(job_rx);
    let (res_tx, res_rx) = mpsc::channel::<(usize, T)>();

    thread::scope(|scope| {
        for _ in 0..workers {
            let res_tx = res_tx.clone();
            let job_rx = &job_rx;
            let f = &f;
            scope.spawn(move || loop {
                // Hold the queue lock only for the pop, not the job.
                let job = job_rx.lock().expect("job queue lock").try_recv();
                match job {
                    Ok((i, x)) => {
                        if res_tx.send((i, f(i, x))).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            });
        }
        drop(res_tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in res_rx {
            out[i] = Some(v);
        }
        out.into_iter()
            .map(|slot| slot.expect("every job delivers exactly one result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(threads, items.clone(), |_, x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn index_matches_position() {
        let got = parallel_map(4, vec!['a', 'b', 'c'], |i, c| format!("{i}{c}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_input() {
        let got: Vec<u8> = parallel_map(8, Vec::<u8>::new(), |_, x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn uneven_job_costs_balance() {
        // Front-loaded heavy jobs must not perturb output order.
        let items: Vec<u64> = (0..64).collect();
        let got = parallel_map(8, items, |_, x| {
            let spins = if x < 4 { 20_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in got.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn resolve_threads_layers() {
        assert_eq!(resolve_threads(5), 5);
        set_default_threads(3);
        assert_eq!(resolve_threads(0), 3);
        set_default_threads(0);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = parallel_map(2, vec![1u32, 2, 3, 4], |_, x| {
            assert!(x != 3, "boom");
            x
        });
    }
}
