//! # trustex-netsim — deterministic discrete-event network substrate
//!
//! This crate provides the simulation substrate that the rest of the
//! `trustex` workspace (the reproduction of *Trust-Aware Cooperation*,
//! Despotovic/Aberer/Hauswirth, ICDCS 2002) runs on:
//!
//! * [`rng::SimRng`] — a deterministic, seedable xoshiro256\*\* PRNG so that
//!   every experiment in the paper reproduction is replayable bit-for-bit.
//! * [`time::SimTime`] and [`event::EventQueue`] — a virtual clock and a
//!   stable discrete-event queue (ties broken by insertion order).
//! * [`net`] — message latency/drop models with per-kind accounting, used
//!   by the P-Grid reputation storage to count routing messages.
//! * [`fault`] — a seeded per-link fault plane (loss, duplication, delay
//!   jitter, partition episodes) whose every decision is a pure function
//!   of `(seed, src, dst, msg_seq)`, so chaos runs replay bit-for-bit.
//! * [`backoff`] — shared saturating exponential-backoff arithmetic and
//!   the deterministic-jitter [`backoff::RetryPolicy`] used by both the
//!   lifecycle rejoin scheduler and fault-plane retries.
//! * [`churn`] — node availability timelines (alternating exponential
//!   up/down periods), used for the churn experiments.
//! * [`stats`] — small online statistics helpers (Welford mean/variance,
//!   quantile samples, counters) shared by the experiment harness.
//! * [`crc`] — CRC-32C checksums backing the durable-evidence codec in
//!   `trustex-persist` (snapshot sections, evidence-log frames).
//!
//! * [`pool`] — a deterministic `std::thread` worker pool. Experiments
//!   are specified as deterministic functions of a seed, so parallelism
//!   is only ever applied to *pre-drawn* independent work (experiment
//!   arms, pre-forked session streams) and results are reassembled in
//!   submission order: thread count changes wall-clock time, never
//!   results.
//!
//! ## Example
//!
//! ```
//! use trustex_netsim::rng::SimRng;
//! use trustex_netsim::event::EventQueue;
//! use trustex_netsim::time::SimTime;
//!
//! let mut rng = SimRng::new(42);
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.push(SimTime::from_millis(5), "world");
//! queue.push(SimTime::from_millis(1), "hello");
//! let (t, what) = queue.pop().unwrap();
//! assert_eq!((t.as_millis(), what), (1, "hello"));
//! assert!(rng.chance(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod churn;
pub mod crc;
pub mod event;
pub mod fault;
pub mod hash;
pub mod net;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;

pub use backoff::{backoff_delay, saturating_shl, RetryPolicy};
pub use churn::{ChurnModel, ChurnTimeline};
pub use crc::{crc32c, Crc32};
pub use event::EventQueue;
pub use fault::{FaultConfig, FaultFate, FaultPlane, PartitionSpec};
pub use net::{Latency, NetConfig, Network, NodeId};
pub use pool::{parallel_map, resolve_threads, set_default_threads};
pub use rng::SimRng;
pub use stats::{Counters, Histogram, OnlineStats, Sample};
pub use time::SimTime;
