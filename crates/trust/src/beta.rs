//! Bayesian beta-reputation trust (the model of Mui, Mohtashemi &
//! Halberstadt, HICSS 2002 — reference \[3\] of the paper).
//!
//! Each subject's honesty is modelled as an unknown Bernoulli parameter
//! `θ` with a Beta(α, β) posterior. Direct experiences update the
//! posterior with unit weight; witness reports are *discounted* by the
//! evaluator's trust in the witness (fractional pseudo-counts), so
//! slander by unknown or distrusted witnesses has limited effect.
//!
//! The trust estimate is the posterior mean `α / (α + β)`; the confidence
//! is derived from the evidence mass, matching Mui et al.'s
//! Chernoff-bound "reliability" notion (see [`crate::confidence`]).

use crate::confidence::evidence_confidence;
use crate::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};
use crate::table::dense_slot;
use serde::{Deserialize, Serialize};
use trustex_persist::codec::{ByteReader, ByteWriter};
use trustex_persist::snapshot::Persistable;
use trustex_persist::PersistError;

/// Configuration of a [`BetaTrust`] model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaConfig {
    /// Prior pseudo-count of honest observations (α₀ > 0).
    pub prior_honest: f64,
    /// Prior pseudo-count of dishonest observations (β₀ > 0).
    pub prior_dishonest: f64,
    /// Per-round exponential forgetting factor in `(0, 1]`; 1 = no
    /// forgetting. Evidence from `d` rounds ago weighs `forgetting^d`.
    pub forgetting: f64,
    /// Weight multiplier for witness reports (before reliability
    /// discounting), in `[0, 1]`.
    pub witness_weight: f64,
    /// Assumed reliability of a never-graded witness, in `[0, 1]`.
    /// 0.5 ignores strangers entirely; the slightly optimistic default
    /// (0.6) lets a cold-started community benefit from gossip while
    /// graded liars still end up fully discounted.
    pub witness_prior: f64,
    /// Scorer-weighted aggregation: additionally scale every witness
    /// report by the evaluator's *behavioural* trust in the witness
    /// (`predict(witness).p_honest`). Witness grading only reacts to
    /// contradicted reports; this knob also deflates reporters the
    /// evaluator has watched cheat in exchanges — the natural defense
    /// against Sybil clones and collusion rings that never file a
    /// gradeable lie about the evaluator's own partners.
    #[serde(default)]
    pub scorer_weighted: bool,
}

impl Default for BetaConfig {
    /// Uniform prior Beta(1, 1), no forgetting, witness weight ½,
    /// witness prior 0.6.
    fn default() -> Self {
        BetaConfig {
            prior_honest: 1.0,
            prior_dishonest: 1.0,
            forgetting: 1.0,
            witness_weight: 0.5,
            witness_prior: 0.6,
            scorer_weighted: false,
        }
    }
}

impl BetaConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when priors are non-positive, forgetting outside `(0, 1]`,
    /// or witness weight outside `[0, 1]` — configurations are code, not
    /// user input.
    fn validate(&self) {
        assert!(
            self.prior_honest > 0.0 && self.prior_dishonest > 0.0,
            "beta priors must be positive"
        );
        assert!(
            self.forgetting > 0.0 && self.forgetting <= 1.0,
            "forgetting must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.witness_weight),
            "witness weight must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.witness_prior),
            "witness prior must be in [0, 1]"
        );
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct Evidence {
    honest: f64,
    dishonest: f64,
    /// Round of the last decay application.
    last_round: u64,
}

impl Evidence {
    fn decay_to(&mut self, round: u64, forgetting: f64) {
        if forgetting < 1.0 && round > self.last_round {
            let f = forgetting.powf((round - self.last_round) as f64);
            self.honest *= f;
            self.dishonest *= f;
        }
        self.last_round = self.last_round.max(round);
    }

    fn add(&mut self, conduct: Conduct, weight: f64) {
        match conduct {
            Conduct::Honest => self.honest += weight,
            Conduct::Dishonest => self.dishonest += weight,
        }
    }

    /// Ingests one observation at `round`, decaying state or — when the
    /// observation arrives *out of order* (gossip replaying per-session
    /// feedback forks can deliver reports from rounds already decayed
    /// past) — discounting the late evidence to its age-equivalent
    /// weight `weight · forgetting^(last_round − round)` instead of
    /// letting it enter at full weight.
    fn observe(&mut self, conduct: Conduct, weight: f64, round: u64, forgetting: f64) {
        if forgetting < 1.0 && round < self.last_round {
            let staleness = forgetting.powf((self.last_round - round) as f64);
            self.add(conduct, weight * staleness);
        } else {
            self.decay_to(round, forgetting);
            self.add(conduct, weight);
        }
    }
}

/// A witness's own evidence plus an explicit graded marker: an ungraded
/// witness gets [`BetaConfig::witness_prior`], which differs from the
/// posterior of empty evidence — the dense table must keep the two
/// apart just like a `HashMap` miss did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct WitnessSlot {
    evidence: Evidence,
    graded: bool,
}

/// The beta-posterior trust model.
///
/// # Examples
///
/// ```
/// use trustex_trust::beta::BetaTrust;
/// use trustex_trust::model::{Conduct, PeerId, TrustModel};
///
/// let mut model = BetaTrust::new();
/// let alice = PeerId(1);
/// for _ in 0..8 {
///     model.record_direct(alice, Conduct::Honest, 0);
/// }
/// model.record_direct(alice, Conduct::Dishonest, 0);
/// let est = model.predict(alice);
/// // Posterior mean (1+8)/(2+9) ≈ 0.818.
/// assert!((est.p_honest - 9.0 / 11.0).abs() < 1e-9);
/// assert!(est.confidence > 0.5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BetaTrust {
    config: BetaConfig,
    /// Dense per-subject evidence, indexed by [`PeerId::index`]; ids
    /// beyond the table read as cold (no evidence).
    evidence: Vec<Evidence>,
    /// Witness reliability estimates (their own beta evidence), used to
    /// discount their reports.
    witness_evidence: Vec<WitnessSlot>,
}

impl Default for BetaTrust {
    fn default() -> Self {
        Self::new()
    }
}

impl BetaTrust {
    /// Creates a model with [`BetaConfig::default`].
    pub fn new() -> BetaTrust {
        BetaTrust::with_config(BetaConfig::default())
    }

    /// Creates a model with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration values (see [`BetaConfig`]).
    pub fn with_config(config: BetaConfig) -> BetaTrust {
        config.validate();
        BetaTrust {
            config,
            evidence: Vec::new(),
            witness_evidence: Vec::new(),
        }
    }

    /// Creates a default-configured model pre-sized for a community of
    /// `n` peers, so no table growth happens on the record path.
    pub fn with_population(n: usize) -> BetaTrust {
        let mut model = BetaTrust::new();
        model.ensure_capacity(n);
        model
    }

    /// Pre-sizes the evidence tables to hold peers `0..n` (never
    /// shrinks). Writes beyond the capacity still grow on demand.
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.evidence.len() < n {
            self.evidence.resize(n, Evidence::default());
        }
        if self.witness_evidence.len() < n {
            self.witness_evidence.resize(n, WitnessSlot::default());
        }
    }

    /// The active configuration.
    pub fn config(&self) -> BetaConfig {
        self.config
    }

    /// Marks a witness's report as later corroborated (`true`) or
    /// contradicted (`false`) by direct experience — feeds the witness
    /// reliability used for discounting.
    pub fn grade_witness(&mut self, witness: PeerId, corroborated: bool, round: u64) {
        let forgetting = self.config.forgetting;
        let slot = dense_slot(&mut self.witness_evidence, witness);
        slot.graded = true;
        slot.evidence
            .observe(Conduct::from_honest(corroborated), 1.0, round, forgetting);
    }

    /// The evaluator's reliability estimate for a witness in `[0, 1]`.
    pub fn witness_reliability(&self, witness: PeerId) -> f64 {
        match self.witness_evidence.get(witness.index()) {
            Some(slot) if slot.graded => {
                (self.config.prior_honest + slot.evidence.honest)
                    / (self.config.prior_honest
                        + self.config.prior_dishonest
                        + slot.evidence.honest
                        + slot.evidence.dishonest)
            }
            _ => self.config.witness_prior,
        }
    }

    /// Raw posterior parameters `(α, β)` for a subject (including priors).
    pub fn posterior(&self, subject: PeerId) -> (f64, f64) {
        let e = self
            .evidence
            .get(subject.index())
            .copied()
            .unwrap_or_default();
        (
            self.config.prior_honest + e.honest,
            self.config.prior_dishonest + e.dishonest,
        )
    }

    fn estimate_of(&self, e: Evidence) -> TrustEstimate {
        let alpha = self.config.prior_honest + e.honest;
        let beta = self.config.prior_dishonest + e.dishonest;
        let mean = alpha / (alpha + beta);
        // Evidence mass beyond the prior drives confidence.
        let mass = (alpha + beta) - (self.config.prior_honest + self.config.prior_dishonest);
        TrustEstimate::new(mean, evidence_confidence(mass))
    }
}

impl TrustModel for BetaTrust {
    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, round: u64) {
        let forgetting = self.config.forgetting;
        dense_slot(&mut self.evidence, subject).observe(conduct, 1.0, round, forgetting);
    }

    fn record_witness(&mut self, report: WitnessReport) {
        // Jøsang-style discounting: the report enters with weight
        // witness_weight · (2·reliability − 1)⁺ — reports from witnesses
        // at or below coin-flip reliability are ignored entirely.
        let reliability = self.witness_reliability(report.witness);
        let discount = (2.0 * reliability - 1.0).max(0.0);
        let mut weight = self.config.witness_weight * discount;
        if self.config.scorer_weighted {
            // Defense knob: deflate by behavioural trust in the witness,
            // so agents watched cheating lose reporting power even when
            // their reports were never directly contradicted.
            weight *= self.predict(report.witness).p_honest;
        }
        if weight <= 0.0 {
            return;
        }
        let forgetting = self.config.forgetting;
        dense_slot(&mut self.evidence, report.subject).observe(
            report.conduct,
            weight,
            report.round,
            forgetting,
        );
    }

    fn predict(&self, subject: PeerId) -> TrustEstimate {
        let e = self
            .evidence
            .get(subject.index())
            .copied()
            .unwrap_or_default();
        self.estimate_of(e)
    }

    fn predict_row_into(&self, out: &mut [TrustEstimate]) {
        let covered = self.evidence.len().min(out.len());
        for (slot, e) in out[..covered].iter_mut().zip(&self.evidence) {
            *slot = self.estimate_of(*e);
        }
        if covered < out.len() {
            let cold = self.estimate_of(Evidence::default());
            out[covered..].fill(cold);
        }
    }

    fn forget_peer(&mut self, peer: PeerId) {
        // Drop both roles: evidence about the peer as a subject and its
        // accumulated witness standing. Estimates for other subjects keep
        // whatever weight the peer's past reports already contributed —
        // absorbed gossip is not re-attributable.
        if let Some(slot) = self.evidence.get_mut(peer.index()) {
            *slot = Evidence::default();
        }
        if let Some(slot) = self.witness_evidence.get_mut(peer.index()) {
            *slot = WitnessSlot::default();
        }
    }

    fn name(&self) -> &'static str {
        "beta"
    }
}

impl Persistable for BetaTrust {
    const TAG: [u8; 4] = *b"BETA";

    fn encode_state(&self, w: &mut ByteWriter) {
        w.put_f64(self.config.prior_honest);
        w.put_f64(self.config.prior_dishonest);
        w.put_f64(self.config.forgetting);
        w.put_f64(self.config.witness_weight);
        w.put_f64(self.config.witness_prior);
        w.put_bool(self.config.scorer_weighted);
        w.put_len(self.evidence.len());
        for e in &self.evidence {
            w.put_f64(e.honest);
            w.put_f64(e.dishonest);
            w.put_u64(e.last_round);
        }
        w.put_len(self.witness_evidence.len());
        for s in &self.witness_evidence {
            w.put_f64(s.evidence.honest);
            w.put_f64(s.evidence.dishonest);
            w.put_u64(s.evidence.last_round);
            w.put_bool(s.graded);
        }
    }

    fn decode_state(r: &mut ByteReader) -> Result<Self, PersistError> {
        // Re-validate the config with typed errors — the panicking
        // `validate()` is for code-authored configs, not disk bytes.
        let config = BetaConfig {
            prior_honest: r.take_finite_f64()?,
            prior_dishonest: r.take_finite_f64()?,
            forgetting: r.take_finite_f64()?,
            witness_weight: r.take_finite_f64()?,
            witness_prior: r.take_finite_f64()?,
            scorer_weighted: r.take_bool()?,
        };
        if !(config.prior_honest > 0.0 && config.prior_dishonest > 0.0) {
            return Err(PersistError::Invalid {
                context: "beta priors must be positive",
            });
        }
        if !(config.forgetting > 0.0 && config.forgetting <= 1.0) {
            return Err(PersistError::Invalid {
                context: "beta forgetting must be in (0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&config.witness_weight)
            || !(0.0..=1.0).contains(&config.witness_prior)
        {
            return Err(PersistError::Invalid {
                context: "beta witness weights must be in [0, 1]",
            });
        }
        let take_evidence = |r: &mut ByteReader| -> Result<Evidence, PersistError> {
            let e = Evidence {
                honest: r.take_finite_f64()?,
                dishonest: r.take_finite_f64()?,
                last_round: r.take_u64()?,
            };
            if e.honest < 0.0 || e.dishonest < 0.0 {
                return Err(PersistError::Invalid {
                    context: "beta evidence counts must be non-negative",
                });
            }
            Ok(e)
        };
        let n = r.take_len(24)?;
        let mut evidence = Vec::with_capacity(n);
        for _ in 0..n {
            evidence.push(take_evidence(r)?);
        }
        let n = r.take_len(25)?;
        let mut witness_evidence = Vec::with_capacity(n);
        for _ in 0..n {
            witness_evidence.push(WitnessSlot {
                evidence: take_evidence(r)?,
                graded: r.take_bool()?,
            });
        }
        Ok(BetaTrust {
            config,
            evidence,
            witness_evidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: u64 = 0;

    #[test]
    fn prior_gives_half() {
        let m = BetaTrust::new();
        let e = m.predict(PeerId(9));
        assert_eq!(e.p_honest, 0.5);
        assert_eq!(e.confidence, 0.0);
    }

    #[test]
    fn posterior_mean_matches_formula() {
        let mut m = BetaTrust::new();
        let p = PeerId(1);
        for _ in 0..3 {
            m.record_direct(p, Conduct::Honest, R);
        }
        m.record_direct(p, Conduct::Dishonest, R);
        let (a, b) = m.posterior(p);
        assert_eq!((a, b), (4.0, 2.0));
        assert!((m.predict(p).p_honest - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_grows_with_evidence() {
        let mut m = BetaTrust::new();
        let p = PeerId(1);
        let mut last = m.predict(p).confidence;
        for i in 0..20 {
            m.record_direct(p, Conduct::Honest, i);
            let c = m.predict(p).confidence;
            assert!(c >= last, "confidence must be monotone");
            last = c;
        }
        assert!(last > 0.6, "confidence after 20 observations: {last}");
    }

    #[test]
    fn forgetting_discounts_old_evidence() {
        let cfg = BetaConfig {
            forgetting: 0.5,
            ..BetaConfig::default()
        };
        let mut m = BetaTrust::with_config(cfg);
        let p = PeerId(1);
        // 10 dishonest observations at round 0.
        for _ in 0..10 {
            m.record_direct(p, Conduct::Dishonest, 0);
        }
        assert!(m.predict(p).p_honest < 0.2);
        // 5 honest at round 10: the old evidence has decayed by 2^-10.
        for _ in 0..5 {
            m.record_direct(p, Conduct::Honest, 10);
        }
        assert!(
            m.predict(p).p_honest > 0.8,
            "recent honesty should dominate: {}",
            m.predict(p).p_honest
        );
    }

    #[test]
    fn no_forgetting_is_order_independent() {
        let mut a = BetaTrust::new();
        let mut b = BetaTrust::new();
        let p = PeerId(1);
        a.record_direct(p, Conduct::Honest, 0);
        a.record_direct(p, Conduct::Dishonest, 5);
        b.record_direct(p, Conduct::Dishonest, 5);
        b.record_direct(p, Conduct::Honest, 0);
        assert_eq!(a.predict(p).p_honest, b.predict(p).p_honest);
    }

    #[test]
    fn unknown_witness_reports_weigh_little() {
        let mut m = BetaTrust::new();
        let subject = PeerId(1);
        m.record_witness(WitnessReport {
            witness: PeerId(2),
            subject,
            conduct: Conduct::Dishonest,
            round: R,
        });
        // Unknown witness: prior reliability 0.6 → discount 0.2 →
        // weight 0.1: a nudge, far from a direct observation.
        let p = m.predict(subject).p_honest;
        assert!(p < 0.5 && p > 0.45, "small nudge expected: {p}");
    }

    #[test]
    fn neutral_witness_prior_ignores_strangers() {
        let mut m = BetaTrust::with_config(BetaConfig {
            witness_prior: 0.5,
            ..BetaConfig::default()
        });
        m.record_witness(WitnessReport {
            witness: PeerId(2),
            subject: PeerId(1),
            conduct: Conduct::Dishonest,
            round: R,
        });
        assert_eq!(m.predict(PeerId(1)).p_honest, 0.5);
    }

    #[test]
    fn reliable_witness_reports_move_the_estimate() {
        let mut m = BetaTrust::new();
        let witness = PeerId(2);
        let subject = PeerId(1);
        for _ in 0..10 {
            m.grade_witness(witness, true, R);
        }
        assert!(m.witness_reliability(witness) > 0.9);
        for round in 0..6 {
            m.record_witness(WitnessReport {
                witness,
                subject,
                conduct: Conduct::Dishonest,
                round,
            });
        }
        assert!(
            m.predict(subject).p_honest < 0.4,
            "trusted witness reports must matter: {}",
            m.predict(subject).p_honest
        );
    }

    #[test]
    fn contradicted_witness_loses_influence() {
        let mut m = BetaTrust::new();
        let witness = PeerId(2);
        for _ in 0..10 {
            m.grade_witness(witness, false, R);
        }
        assert!(m.witness_reliability(witness) < 0.2);
        let subject = PeerId(1);
        m.record_witness(WitnessReport {
            witness,
            subject,
            conduct: Conduct::Dishonest,
            round: R,
        });
        assert_eq!(m.predict(subject).p_honest, 0.5, "slander ignored");
    }

    #[test]
    fn witness_weight_zero_disables_witnesses() {
        let mut m = BetaTrust::with_config(BetaConfig {
            witness_weight: 0.0,
            ..BetaConfig::default()
        });
        let witness = PeerId(2);
        for _ in 0..10 {
            m.grade_witness(witness, true, R);
        }
        m.record_witness(WitnessReport {
            witness,
            subject: PeerId(1),
            conduct: Conduct::Dishonest,
            round: R,
        });
        assert_eq!(m.predict(PeerId(1)).p_honest, 0.5);
    }

    #[test]
    #[should_panic(expected = "priors must be positive")]
    fn invalid_prior_panics() {
        BetaTrust::with_config(BetaConfig {
            prior_honest: 0.0,
            ..BetaConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "forgetting")]
    fn invalid_forgetting_panics() {
        BetaTrust::with_config(BetaConfig {
            forgetting: 1.5,
            ..BetaConfig::default()
        });
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(BetaTrust::new().name(), "beta");
    }

    /// Regression: an observation whose round predates `last_round` used
    /// to skip the decay entirely and enter at *full* weight under
    /// forgetting < 1. It must instead be discounted by
    /// `forgetting^(last_round − round)`, exactly as if it had been
    /// recorded on time and decayed since.
    #[test]
    fn late_evidence_is_discounted_to_age_equivalent_weight() {
        let cfg = BetaConfig {
            forgetting: 0.5,
            ..BetaConfig::default()
        };
        // In-order: honest at round 8, then advance to round 10.
        let mut on_time = BetaTrust::with_config(cfg);
        let p = PeerId(1);
        on_time.record_direct(p, Conduct::Honest, 8);
        on_time.record_direct(p, Conduct::Dishonest, 10);
        // Out-of-order: round 10 first, the round-8 report replays late.
        let mut late = BetaTrust::with_config(cfg);
        late.record_direct(p, Conduct::Dishonest, 10);
        late.record_direct(p, Conduct::Honest, 8);
        // Both orders must agree: the late honest observation carries
        // weight 0.5² = 0.25, not 1.0.
        let (alpha, beta) = late.posterior(p);
        assert!((alpha - 1.25).abs() < 1e-12, "late α: {alpha}");
        assert!((beta - 2.0).abs() < 1e-12, "late β: {beta}");
        let (a2, b2) = on_time.posterior(p);
        assert!((alpha - a2).abs() < 1e-12 && (beta - b2).abs() < 1e-12);
        // Late witness reports take the same path.
        let mut m = BetaTrust::with_config(cfg);
        let witness = PeerId(2);
        for _ in 0..10 {
            m.grade_witness(witness, true, 0);
        }
        m.record_direct(p, Conduct::Honest, 6);
        let (before, _) = m.posterior(p);
        m.record_witness(WitnessReport {
            witness,
            subject: p,
            conduct: Conduct::Honest,
            round: 2,
        });
        let (after, _) = m.posterior(p);
        let gained = after - before;
        assert!(
            gained > 0.0 && gained < 0.5 * 0.0625 + 1e-12,
            "stale witness report must enter below its on-time weight: {gained}"
        );
    }

    /// With forgetting = 1 (the default) late evidence is weightless to
    /// discount — order independence must hold exactly as before.
    #[test]
    fn late_evidence_full_weight_without_forgetting() {
        let p = PeerId(1);
        let mut m = BetaTrust::new();
        m.record_direct(p, Conduct::Honest, 10);
        m.record_direct(p, Conduct::Honest, 3);
        assert_eq!(m.posterior(p), (3.0, 1.0));
    }

    #[test]
    fn scorer_weighting_deflates_reports_from_known_cheaters() {
        let cfg = BetaConfig {
            scorer_weighted: true,
            ..BetaConfig::default()
        };
        let mut weighted = BetaTrust::with_config(cfg);
        let mut plain = BetaTrust::new();
        let witness = PeerId(2);
        let subject = PeerId(1);
        // Build witness reliability in both, then let the weighted model
        // also watch the witness cheat directly.
        for m in [&mut weighted, &mut plain] {
            for _ in 0..10 {
                m.grade_witness(witness, true, R);
            }
        }
        for _ in 0..10 {
            weighted.record_direct(witness, Conduct::Dishonest, R);
            plain.record_direct(witness, Conduct::Dishonest, R);
        }
        let report = WitnessReport {
            witness,
            subject,
            conduct: Conduct::Dishonest,
            round: R,
        };
        weighted.record_witness(report);
        plain.record_witness(report);
        // p_honest(witness) = 1/12 → the weighted report barely moves the
        // subject; the plain one enters at full discounted weight.
        assert!(
            weighted.predict(subject).p_honest > plain.predict(subject).p_honest,
            "scorer weighting must deflate a cheater's slander"
        );
        let (_, beta_w) = weighted.posterior(subject);
        let (_, beta_p) = plain.posterior(subject);
        assert!(
            (beta_p - beta_w) > 0.3,
            "weighted {beta_w} vs plain {beta_p}"
        );
    }

    #[test]
    fn scorer_weighting_off_changes_nothing() {
        let cfg = BetaConfig::default();
        assert!(!cfg.scorer_weighted);
        let mut m = BetaTrust::with_config(cfg);
        let witness = PeerId(2);
        for _ in 0..10 {
            m.grade_witness(witness, true, R);
            m.record_direct(witness, Conduct::Dishonest, R);
        }
        let mut reference = BetaTrust::new();
        for _ in 0..10 {
            reference.grade_witness(witness, true, R);
            reference.record_direct(witness, Conduct::Dishonest, R);
        }
        let report = WitnessReport {
            witness,
            subject: PeerId(1),
            conduct: Conduct::Dishonest,
            round: R,
        };
        m.record_witness(report);
        reference.record_witness(report);
        assert_eq!(m.predict(PeerId(1)), reference.predict(PeerId(1)));
    }

    #[test]
    fn forget_peer_resets_subject_and_witness_roles() {
        let mut m = BetaTrust::with_population(8);
        let churner = PeerId(3);
        let other = PeerId(5);
        for _ in 0..12 {
            m.record_direct(churner, Conduct::Dishonest, R);
            m.record_direct(other, Conduct::Honest, R);
            m.grade_witness(churner, false, R);
        }
        assert!(m.predict(churner).p_honest < 0.2);
        assert!(m.witness_reliability(churner) < 0.2);
        let other_before = m.predict(other);
        m.forget_peer(churner);
        // Cold again in both roles; bystanders untouched.
        assert_eq!(m.predict(churner), BetaTrust::new().predict(churner));
        assert_eq!(m.witness_reliability(churner), m.config().witness_prior);
        assert_eq!(m.predict(other), other_before);
        // Forgetting an id beyond the table is a no-op, not a panic.
        m.forget_peer(PeerId(10_000));
    }

    #[test]
    fn with_population_presizes_without_changing_predictions() {
        let sized = BetaTrust::with_population(64);
        let grown = BetaTrust::new();
        for id in [0u32, 7, 63, 64, 1000] {
            assert_eq!(sized.predict(PeerId(id)), grown.predict(PeerId(id)));
        }
    }
}
