//! Trust → exposure-bound translation: the paper's §3 step of turning
//! "decreased expected gains" into "the values the partners accept to be
//! indebted".
//!
//! A party that completes the exchange gains `G`. Accepting an exposure
//! bound `ε` means a defecting opponent can cost it at most `ε`; with the
//! opponent's estimated dishonesty probability `p̂`, the party's expected
//! gain drops by at most `p̂ · ε`. A party willing to give up the
//! fraction `b` of its gain (its *risk budget*, shaped by its
//! [`crate::risk::RiskProfile`]) therefore accepts
//!
//! ```text
//!   ε = b · G / p̂        (capped, and infinite trust ⇒ the cap)
//! ```
//!
//! The dishonesty estimate is used *pessimistically*: estimates with low
//! confidence are blended towards the ignorant prior `0.5` before use.

use crate::risk::RiskProfile;
use serde::{Deserialize, Serialize};
use trustex_core::money::Money;
use trustex_trust::model::TrustEstimate;

/// Parameters of the exposure computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExposurePolicy {
    /// Base fraction of the completion gain put at risk (the paper's
    /// "decrease of the expected gains"), in `[0, 1]`.
    pub base_budget_fraction: f64,
    /// The party's risk attitude, multiplying the base fraction.
    pub risk: RiskProfile,
    /// Hard cap on the exposure bound (e.g. the deal price): no trust
    /// level justifies risking more than this.
    pub cap: Money,
}

impl ExposurePolicy {
    /// A conservative default: risk 10% of the gain, neutral attitude.
    pub fn with_cap(cap: Money) -> ExposurePolicy {
        ExposurePolicy {
            base_budget_fraction: 0.1,
            risk: RiskProfile::Neutral,
            cap,
        }
    }
}

/// Blends an estimate towards the ignorant prior according to its
/// confidence: full confidence uses `p̂` as-is, zero confidence uses 0.5.
pub fn effective_dishonesty(estimate: TrustEstimate) -> f64 {
    let c = estimate.confidence.clamp(0.0, 1.0);
    c * estimate.p_dishonest() + (1.0 - c) * 0.5
}

/// Computes the exposure bound a party grants its opponent.
///
/// `gain` is the party's gain from completion (supplier profit or
/// consumer surplus). Returns zero when the gain is non-positive — a
/// party with nothing to win risks nothing.
///
/// # Examples
///
/// ```
/// use trustex_core::money::Money;
/// use trustex_decision::exposure::{exposure_bound, ExposurePolicy};
/// use trustex_trust::model::TrustEstimate;
///
/// let policy = ExposurePolicy::with_cap(Money::from_units(100));
/// // A fully trusted opponent (p_dishonest = 0.02 at high confidence):
/// let trusted = TrustEstimate::new(0.98, 1.0);
/// let eps_hi = exposure_bound(trusted, Money::from_units(10), policy);
/// // A distrusted opponent:
/// let shady = TrustEstimate::new(0.5, 1.0);
/// let eps_lo = exposure_bound(shady, Money::from_units(10), policy);
/// assert!(eps_hi > eps_lo);
/// ```
pub fn exposure_bound(opponent: TrustEstimate, gain: Money, policy: ExposurePolicy) -> Money {
    if !gain.is_positive() {
        return Money::ZERO;
    }
    let budget_fraction = (policy.base_budget_fraction * policy.risk.multiplier()).clamp(0.0, 1.0);
    let budget = gain.scale(budget_fraction);
    let p = effective_dishonesty(opponent);
    if p <= 0.0 {
        return policy.cap; // infinite trust: only the cap binds
    }
    budget.scale(1.0 / p).min(policy.cap).max(Money::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ExposurePolicy {
        ExposurePolicy {
            base_budget_fraction: 0.1,
            risk: RiskProfile::Neutral,
            cap: Money::from_units(1_000),
        }
    }

    #[test]
    fn effective_dishonesty_blends_with_confidence() {
        let certain = TrustEstimate::new(0.9, 1.0);
        assert!((effective_dishonesty(certain) - 0.1).abs() < 1e-12);
        let ignorant = TrustEstimate::new(0.9, 0.0);
        assert!((effective_dishonesty(ignorant) - 0.5).abs() < 1e-12);
        let half = TrustEstimate::new(0.9, 0.5);
        assert!((effective_dishonesty(half) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bound_formula() {
        // gain 100, budget 10% = 10, p̂ = 0.2 ⇒ ε = 50.
        let est = TrustEstimate::new(0.8, 1.0);
        let eps = exposure_bound(est, Money::from_units(100), policy());
        assert_eq!(eps, Money::from_units(50));
    }

    #[test]
    fn bound_monotone_in_trust() {
        let gain = Money::from_units(100);
        let mut last = Money::ZERO;
        for p_honest in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let eps = exposure_bound(TrustEstimate::new(p_honest, 1.0), gain, policy());
            assert!(eps >= last, "exposure must grow with trust");
            last = eps;
        }
    }

    #[test]
    fn cap_binds_at_full_trust() {
        let est = TrustEstimate::new(1.0, 1.0); // p̂ = 0
        let eps = exposure_bound(est, Money::from_units(100), policy());
        assert_eq!(eps, policy().cap);
    }

    #[test]
    fn zero_gain_zero_exposure() {
        let est = TrustEstimate::new(0.9, 1.0);
        assert_eq!(exposure_bound(est, Money::ZERO, policy()), Money::ZERO);
        assert_eq!(
            exposure_bound(est, Money::from_units(-5), policy()),
            Money::ZERO
        );
    }

    #[test]
    fn risk_attitude_scales_bound() {
        let est = TrustEstimate::new(0.8, 1.0);
        let gain = Money::from_units(100);
        let averse = ExposurePolicy {
            risk: RiskProfile::Averse { gamma: 0.5 },
            ..policy()
        };
        let seeking = ExposurePolicy {
            risk: RiskProfile::Seeking { gamma: 2.0 },
            ..policy()
        };
        let e_neutral = exposure_bound(est, gain, policy());
        let e_averse = exposure_bound(est, gain, averse);
        let e_seeking = exposure_bound(est, gain, seeking);
        assert_eq!(e_averse, e_neutral.scale(0.5));
        assert_eq!(e_seeking, e_neutral.scale(2.0));
    }

    #[test]
    fn unknown_opponent_uses_prior() {
        // Unknown opponent: p_eff = 0.5 ⇒ ε = 2 × budget.
        let eps = exposure_bound(TrustEstimate::UNKNOWN, Money::from_units(100), policy());
        assert_eq!(eps, Money::from_units(20));
    }

    #[test]
    fn with_cap_constructor() {
        let p = ExposurePolicy::with_cap(Money::from_units(7));
        assert_eq!(p.cap, Money::from_units(7));
        assert!((p.base_budget_fraction - 0.1).abs() < 1e-12);
    }
}
