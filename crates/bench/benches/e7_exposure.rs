//! E7 bench: the decision pipeline — exposure bounds and full bilateral
//! planning.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use trustex_core::money::Money;
use trustex_core::policy::PaymentPolicy;
use trustex_decision::engage::EngagementRule;
use trustex_decision::exposure::{exposure_bound, ExposurePolicy};
use trustex_decision::negotiate::{plan_exchange, PartyInputs};
use trustex_market::workload::Workload;
use trustex_netsim::rng::SimRng;
use trustex_trust::model::TrustEstimate;

fn bench_exposure_bound(c: &mut Criterion) {
    let policy = ExposurePolicy::with_cap(Money::from_units(1_000));
    let est = TrustEstimate::new(0.9, 0.8);
    c.bench_function("e7/exposure_bound", |b| {
        b.iter(|| black_box(exposure_bound(est, Money::from_units(100), policy)))
    });
}

fn bench_plan_exchange(c: &mut Criterion) {
    let mut rng = SimRng::new(11);
    let deal = Workload::Ebay.generate_deal(&mut rng);
    let inputs = PartyInputs {
        trust_in_opponent: TrustEstimate::new(0.95, 0.9),
        exposure: ExposurePolicy::with_cap(deal.price()),
        engagement: EngagementRule::default(),
    };
    c.bench_function("e7/plan_exchange", |b| {
        b.iter(|| black_box(plan_exchange(&deal, inputs, inputs, PaymentPolicy::Lazy)))
    });
}

criterion_group!(benches, bench_exposure_bound, bench_plan_exchange);
criterion_main!(benches);
