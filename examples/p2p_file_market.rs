//! "Exchanges of MP3 files for money in a P2P system" (§3): chunked file
//! deals, complaints stored in a real P-Grid overlay, trust computed from
//! queried complaint tallies — the full decentralised pipeline.
//!
//! ```text
//! cargo run --release --example p2p_file_market
//! ```

use trust_aware_cooperation::market::experiments::{e0_pipeline, e6_pgrid, Scale};
use trust_aware_cooperation::reputation::prelude::*;
use trustex_trust::model::PeerId;

fn main() {
    // A direct look at the storage layer first: build a grid, file a few
    // complaints, query them back.
    let mut system = ReputationSystem::new(128, ReputationConfig::default(), 7);
    let cheater = PeerId(17);
    for victim in [2u32, 5, 9, 30, 44] {
        system.file_complaint(PeerId(victim), cheater, 0, None);
    }
    let tally = system
        .query_tally(PeerId(1), cheater, None)
        .expect("grid resolves");
    println!(
        "P-Grid tally for {cheater}: {} complaints received, {} filed ({} replicas, {} hops)",
        tally.received, tally.filed, tally.replicas, tally.hops
    );
    println!(
        "total storage messages so far: {}\n",
        system.network().total_sent()
    );

    // The E6 figure: message cost scales logarithmically, replication
    // rides out churn.
    println!("{}", e6_pgrid(Scale::Smoke).render());

    // And the E0 figure: the complete reference-model loop over this
    // substrate — completion rises and honest losses fall as complaints
    // accumulate.
    println!("{}", e0_pipeline(Scale::Smoke).render());
}
