//! Integration test: the paper's headline claim at market scale.
//!
//! Trust-aware scheduling must (a) enable trade where safe-only cannot,
//! (b) bound honest losses far below the naive unsafe strategies, and
//! (c) keep most of the achievable welfare for the honest population.

use trustex_market::prelude::*;
use trustex_market::sim::MarketConfig;

fn run(strategy: Strategy) -> MarketReport {
    let cfg = MarketConfig {
        n_agents: 40,
        rounds: 8,
        sessions_per_round: 40,
        strategy,
        workload: Workload::FileSharing,
        ..MarketConfig::default()
    };
    MarketSim::new(cfg).run()
}

#[test]
fn headline_claim_trust_aware_dominates() {
    let safe = run(Strategy::SafeOnly);
    let aware = run(Strategy::TrustAware);
    let naive = run(Strategy::UnsafeDeliverFirst);

    // (a) Safe-only forgoes all trade on positive-cost goods.
    assert_eq!(safe.completed, 0);
    assert!(
        aware.completed > 100,
        "trust-aware trades: {}",
        aware.completed
    );

    // (b) The naive strategy haemorrhages honest welfare to rational
    // defectors; trust-aware bounds the exposure.
    assert!(
        aware.honest_losses * 2.0 < naive.honest_losses,
        "honest losses: aware {} vs naive {}",
        aware.honest_losses,
        naive.honest_losses
    );
    assert!(
        naive.dishonest_gain > 2.0 * aware.dishonest_gain,
        "defector takings: naive {} vs aware {}",
        naive.dishonest_gain,
        aware.dishonest_gain
    );

    // (c) Honest agents keep the bulk of the gains under trust-aware
    // scheduling and end up better off than under the naive strategy.
    assert!(aware.honest_gain > naive.honest_gain);
    assert!(aware.honest_gain > 0.0);
}

#[test]
fn pay_first_shifts_losses_to_consumers() {
    // Symmetry check: pay-first exposes honest consumers to dishonest
    // suppliers instead; the totals remain far above trust-aware.
    let aware = run(Strategy::TrustAware);
    let payfirst = run(Strategy::UnsafePayFirst);
    assert!(payfirst.honest_losses > aware.honest_losses);
}
