//! E8 bench: a complete exchange session (plan + execute) per workload —
//! the inner loop of the marketplace experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trustex_core::deal::Deal;
use trustex_core::execute::{execute, Honest};
use trustex_core::policy::PaymentPolicy;
use trustex_market::prelude::*;
use trustex_netsim::rng::SimRng;
use trustex_trust::model::TrustEstimate;

/// First deal of the workload stream that trusted parties can trade —
/// some teamwork bundles need more margin than even high trust grants,
/// and the bench needs uniform per-iteration work anyway.
fn tradeable_deal(w: Workload, trusted: TrustEstimate) -> Deal {
    let mut rng = SimRng::new(12);
    loop {
        let deal = w.generate_deal(&mut rng);
        if plan(
            Strategy::TrustAware,
            &deal,
            trusted,
            trusted,
            PaymentPolicy::Lazy,
        )
        .is_ok()
        {
            return deal;
        }
    }
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8/session");
    let trusted = TrustEstimate::new(0.95, 0.9);
    for w in Workload::ALL {
        let deal = tradeable_deal(w, trusted);
        group.bench_with_input(BenchmarkId::from_parameter(w.label()), &deal, |b, deal| {
            b.iter(|| {
                let seq = plan(
                    Strategy::TrustAware,
                    deal,
                    trusted,
                    trusted,
                    PaymentPolicy::Lazy,
                )
                .expect("pre-selected tradeable deal");
                black_box(execute(deal, &seq, &mut Honest, &mut Honest))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
