//! E12 bench: the service replay loop — interleaved query/feedback
//! streams served through the epoch-swapped trust engine, per model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use trustex_market::prelude::*;

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12/replay");
    let events = 20_000usize;
    group.throughput(Throughput::Elements(events as u64));
    for model in ModelKind::ALL {
        let cfg = ReplayConfig {
            n_peers: 200,
            events,
            window: 1_000,
            model,
            threads: 1,
            ..ReplayConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(model.label()),
            &cfg,
            |b, cfg| b.iter(|| black_box(replay(cfg))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
