//! # trustex-agents — behavioural models of community members
//!
//! Synthetic agents standing in for the human participants of the online
//! communities *Trust-Aware Cooperation* targets (eBay traders, P2P file
//! sharers, mobile teamworkers). Each agent has:
//!
//! * an [`behavior::ExchangeBehavior`] — honest, rational-with-stake,
//!   stochastic cheater, or exit scammer — adapted per exchange into the
//!   execution engine's `DefectionOracle`;
//! * a [`reporting::ReportingBehavior`] — truthful, lying, slanderous or
//!   silent — governing what reaches the reputation system;
//! * ground-truth labels (true cooperation probability) so experiments
//!   can score trust models against reality.
//!
//! [`profile::PopulationMix`] samples whole communities deterministically
//! for the experiment suite, and [`adversary`] packages *coordinated*
//! attacks — collusion rings, targeted slander cells, Sybil
//! amplification, oscillating defectors and whitewashers — as
//! composable profiles that degrade to the independent baselines at
//! coordination level zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod behavior;
pub mod profile;
pub mod reporting;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::adversary::{mix_of, zoo_mix, Adversary, Faction};
    pub use crate::behavior::{BehaviorOracle, ExchangeBehavior};
    pub use crate::profile::{AgentProfile, PopulationMix};
    pub use crate::reporting::{Campaign, ReportingBehavior};
}
