//! Dense per-peer evidence tables.
//!
//! All four trust models store their per-subject state in
//! population-sized `Vec`s indexed by [`PeerId::index`] instead of
//! `HashMap`s: the market simulation assigns dense ids `0..n`, so a
//! direct index replaces a hash-and-probe on every `record_*` and
//! `predict`, and `predict_row_into` becomes a single contiguous sweep.
//!
//! The contract is *grow-on-write*: constructors take an optional
//! population hint (`with_population`) that pre-sizes the table, writes
//! to ids beyond the current capacity grow it ([`dense_slot`]), and reads
//! of never-written ids observe the cold default without allocating —
//! standalone use with sparse or unbounded ids keeps working exactly
//! like the old map-backed storage.

use crate::model::PeerId;

/// Mutable access to `peer`'s slot in a dense table, growing the table
/// with default slots when the id lies beyond the current capacity — the
/// dense replacement for `HashMap::entry(..).or_default()`.
pub(crate) fn dense_slot<T: Default + Clone>(table: &mut Vec<T>, peer: PeerId) -> &mut T {
    let index = peer.index();
    if index >= table.len() {
        table.resize(index + 1, T::default());
    }
    &mut table[index]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_on_demand_and_keeps_values() {
        let mut table: Vec<u32> = Vec::new();
        *dense_slot(&mut table, PeerId(3)) = 7;
        assert_eq!(table, vec![0, 0, 0, 7]);
        *dense_slot(&mut table, PeerId(0)) = 1;
        assert_eq!(table.len(), 4, "writes below capacity must not grow");
        assert_eq!(table, vec![1, 0, 0, 7]);
    }
}
