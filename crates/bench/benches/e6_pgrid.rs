//! E6 bench: P-Grid construction and query routing across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trustex_netsim::net::{NetConfig, Network};
use trustex_netsim::rng::SimRng;
use trustex_reputation::pgrid::{PGrid, PGridConfig};
use trustex_reputation::record::key_for_peer;
use trustex_trust::model::PeerId;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6/build");
    group.sample_size(10);
    for n in [64usize, 256, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = SimRng::new(9);
                black_box(PGrid::build(n, PGridConfig::for_population(n, 4), &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6/query");
    // 16384 exercises the leaf directory at depth 12 — a query there
    // was O(n) per replica-group resolution before the index.
    for n in [64usize, 256, 1024, 16384] {
        let mut rng = SimRng::new(10);
        let grid = PGrid::build(n, PGridConfig::for_population(n, 4), &mut rng);
        let mut net = Network::new(NetConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &grid, |b, grid| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                let key = key_for_peer(PeerId(i), grid.config().key_bits);
                black_box(grid.query((i as usize) % grid.len(), key, None, &mut net, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6/join");
    group.sample_size(10);
    // One admission: subtree-sampled descent + replica handoff. The
    // subtree-count walk keeps this O(depth), so the cost should stay
    // flat as the population grows.
    for n in [256usize, 4096, 65536] {
        let mut rng = SimRng::new(11);
        let grid = PGrid::build(n, PGridConfig::for_population(n, 4), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &grid, |b, grid| {
            // One clone per measurement, then successive admissions into
            // the same overlay — each iteration is one join.
            let mut g = grid.clone();
            b.iter(|| black_box(g.join(&mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_query, bench_join);
criterion_main!(benches);
