//! Accuracy and welfare metrics for the experiment suite.
//!
//! # Batched evaluation
//!
//! All three accuracy metrics walk every ordered (evaluator, subject)
//! pair. The batched engine here asks each evaluator's model for its
//! whole prediction row at once
//! ([`TrustModel::predict_row_into`][trustex_trust::model::TrustModel::predict_row_into]
//! — a single dense-table sweep that hoists the per-call work, notably
//! the complaint model's population median, out of the loop), fans the
//! evaluator rows across
//! [`parallel_map`][trustex_netsim::pool::parallel_map], and folds the
//! per-evaluator partials **in evaluator order**. The float
//! accumulation replays the exact association of the retained naive
//! pair walks ([`naive`]), so every metric is bit-identical to the
//! unbatched sequential code for any thread count.

use crate::population::Community;
use trustex_netsim::pool::{parallel_map, resolve_threads};
use trustex_trust::model::{PeerId, TrustEstimate};

/// The ground-truth cooperation probability of every agent, in id order.
///
/// The truth vector is static over a simulation run, so per-round metric
/// tracking computes it once and reuses the buffer via
/// [`trust_mae_with_truth`] instead of re-deriving it every round.
pub fn cooperation_truth(community: &Community) -> Vec<f64> {
    community
        .agent_ids()
        .map(|a| community.true_cooperation_prob(a))
        .collect()
}

/// All three trust-accuracy metrics, computed from one shared batch of
/// evaluator prediction rows by [`accuracy_metrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyMetrics {
    /// Mean absolute error against ground truth ([`trust_mae`]).
    pub mae: f64,
    /// Mann–Whitney ranking accuracy ([`rank_accuracy`]).
    pub rank_accuracy: f64,
    /// Thresholded classification accuracy ([`decision_accuracy`]).
    pub decision_accuracy: f64,
}

/// Runs `f` over every evaluator's full prediction row, fanning chunks
/// of consecutive evaluators across the worker pool (`threads` as in
/// [`resolve_threads`]), and returns the per-evaluator outputs in
/// evaluator order. Each worker reuses one row buffer across its
/// evaluators; `predict_row_into` overwrites every slot.
fn map_evaluator_rows<T, F>(community: &Community, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(PeerId, &[TrustEstimate]) -> T + Sync,
{
    let n = community.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = resolve_threads(threads);
    // ~4 chunks per worker so uneven row costs balance without paying
    // queue traffic per row.
    let chunk_len = n.div_ceil(workers.max(1) * 4).max(1);
    let chunks: Vec<(u32, u32)> = (0..n as u32)
        .step_by(chunk_len)
        .map(|start| (start, ((start as usize + chunk_len).min(n)) as u32))
        .collect();
    parallel_map(workers, chunks, |_, (start, end)| {
        let mut row = vec![TrustEstimate::UNKNOWN; n];
        (start..end)
            .map(|e| {
                let evaluator = PeerId(e);
                community.predict_row_into(evaluator, &mut row);
                f(evaluator, &row)
            })
            .collect::<Vec<T>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// `|estimate − truth|` for every subject other than the evaluator, in
/// subject order — the per-evaluator slice of the MAE pair walk.
fn abs_errors(evaluator: PeerId, row: &[TrustEstimate], truth: &[f64]) -> Vec<f64> {
    row.iter()
        .enumerate()
        .filter(|(subject, _)| *subject != evaluator.index())
        .map(|(subject, est)| (est.p_honest - truth[subject]).abs())
        .collect()
}

/// One evaluator's Mann–Whitney U tally over its prediction row:
/// `(half_units, pairs)` in exact half-unit integers (associative, so
/// the parallel fold is bit-identical to the sequential accumulation).
fn rank_partial(
    evaluator: PeerId,
    row: &[TrustEstimate],
    honest: &[PeerId],
    dishonest: &[PeerId],
) -> (u64, u64) {
    let mut honest_scores: Vec<f64> = honest
        .iter()
        .filter(|&&h| h != evaluator)
        .map(|&h| row[h.index()].p_honest)
        .collect();
    if honest_scores.is_empty() {
        return (0, 0);
    }
    honest_scores.sort_unstable_by(f64::total_cmp);
    let mut half_units: u64 = 0;
    let mut pairs: u64 = 0;
    for &d in dishonest {
        if d == evaluator {
            continue;
        }
        let pd = row[d.index()].p_honest;
        let below = honest_scores.partition_point(|&ph| ph.total_cmp(&pd).is_lt());
        let below_or_tied = honest_scores.partition_point(|&ph| ph.total_cmp(&pd).is_le());
        let wins = (honest_scores.len() - below_or_tied) as u64;
        let ties = (below_or_tied - below) as u64;
        half_units += 2 * wins + ties;
        pairs += honest_scores.len() as u64;
    }
    (half_units, pairs)
}

/// One evaluator's `(correct, pairs)` classification tally.
fn decision_partial(community: &Community, evaluator: PeerId, row: &[TrustEstimate]) -> (u64, u64) {
    let mut correct: u64 = 0;
    let mut pairs: u64 = 0;
    for subject in community.agent_ids() {
        if subject == evaluator {
            continue;
        }
        let predicted_honest = row[subject.index()].p_honest >= 0.5;
        if predicted_honest == community.is_honest(subject) {
            correct += 1;
        }
        pairs += 1;
    }
    (correct, pairs)
}

/// Ground-truth class split, in id order.
fn truth_classes(community: &Community) -> (Vec<PeerId>, Vec<PeerId>) {
    community.agent_ids().partition(|&a| community.is_honest(a))
}

/// Sequential pair-order MAE fold: one running accumulator over the
/// per-evaluator error slices reproduces the naive walk's float
/// association exactly.
fn fold_mae<'a>(rows: impl Iterator<Item = &'a Vec<f64>>) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for row in rows {
        for err in row {
            total += err;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

fn fold_rank(partials: impl Iterator<Item = (u64, u64)>) -> f64 {
    let (half_units, pairs) = partials.fold((0u64, 0u64), |(h, p), (dh, dp)| (h + dh, p + dp));
    if pairs == 0 {
        0.5
    } else {
        half_units as f64 / (2 * pairs) as f64
    }
}

fn fold_decision(partials: impl Iterator<Item = (u64, u64)>) -> f64 {
    let (correct, pairs) = partials.fold((0u64, 0u64), |(c, p), (dc, dp)| (c + dc, p + dp));
    if pairs == 0 {
        1.0
    } else {
        correct as f64 / pairs as f64
    }
}

/// Computes MAE, ranking accuracy and decision accuracy from **one**
/// batch of evaluator prediction rows — each (evaluator, subject) pair
/// is predicted exactly once, where calling the three standalone
/// metrics predicts it up to three times.
///
/// `threads` resolves as in
/// [`resolve_threads`][trustex_netsim::pool::resolve_threads] (0 = the
/// process default); the result is bit-identical for every value.
///
/// # Panics
///
/// Panics if `truth.len()` differs from the community size.
pub fn accuracy_metrics(community: &Community, truth: &[f64], threads: usize) -> AccuracyMetrics {
    assert_eq!(truth.len(), community.len(), "truth buffer size mismatch");
    let (honest, dishonest) = truth_classes(community);
    let ranked = !honest.is_empty() && !dishonest.is_empty();
    struct Partial {
        abs_err: Vec<f64>,
        rank: (u64, u64),
        decision: (u64, u64),
    }
    let partials = map_evaluator_rows(community, threads, |evaluator, row| Partial {
        abs_err: abs_errors(evaluator, row, truth),
        rank: if ranked {
            rank_partial(evaluator, row, &honest, &dishonest)
        } else {
            (0, 0)
        },
        decision: decision_partial(community, evaluator, row),
    });
    AccuracyMetrics {
        mae: fold_mae(partials.iter().map(|p| &p.abs_err)),
        rank_accuracy: if ranked {
            fold_rank(partials.iter().map(|p| p.rank))
        } else {
            0.5
        },
        decision_accuracy: fold_decision(partials.iter().map(|p| p.decision)),
    }
}

/// Mean absolute error of trust estimates against ground truth, averaged
/// over all ordered evaluator→subject pairs (`evaluator ≠ subject`).
pub fn trust_mae(community: &Community) -> f64 {
    trust_mae_with_truth(community, &cooperation_truth(community))
}

/// [`trust_mae`] against a precomputed [`cooperation_truth`] buffer —
/// the batched variant the per-round tracking hot path uses.
///
/// # Panics
///
/// Panics if `truth.len()` differs from the community size.
pub fn trust_mae_with_truth(community: &Community, truth: &[f64]) -> f64 {
    trust_mae_with_truth_threads(community, truth, 0)
}

/// [`trust_mae_with_truth`] with an explicit worker-thread count
/// (0 = process default; the value never changes the result).
pub(crate) fn trust_mae_with_truth_threads(
    community: &Community,
    truth: &[f64],
    threads: usize,
) -> f64 {
    assert_eq!(truth.len(), community.len(), "truth buffer size mismatch");
    let rows = map_evaluator_rows(community, threads, |evaluator, row| {
        abs_errors(evaluator, row, truth)
    });
    fold_mae(rows.iter())
}

/// Probability that a uniformly chosen (honest, dishonest) subject pair
/// is ranked correctly by a uniformly chosen evaluator (ties count ½) —
/// an AUC analogue. Returns 0.5 when either class is empty.
pub fn rank_accuracy(community: &Community) -> f64 {
    rank_accuracy_threads(community, 0)
}

pub(crate) fn rank_accuracy_threads(community: &Community, threads: usize) -> f64 {
    let (honest, dishonest) = truth_classes(community);
    if honest.is_empty() || dishonest.is_empty() {
        return 0.5;
    }
    let partials = map_evaluator_rows(community, threads, |evaluator, row| {
        rank_partial(evaluator, row, &honest, &dishonest)
    });
    fold_rank(partials.into_iter())
}

/// Fraction of evaluator→subject pairs classified correctly by
/// thresholding `p_honest` at 0.5 against the binary ground truth.
pub fn decision_accuracy(community: &Community) -> f64 {
    decision_accuracy_threads(community, 0)
}

pub(crate) fn decision_accuracy_threads(community: &Community, threads: usize) -> f64 {
    let partials = map_evaluator_rows(community, threads, |evaluator, row| {
        decision_partial(community, evaluator, row)
    });
    fold_decision(partials.into_iter())
}

/// The unbatched per-pair metric walks the engine replaced, retained
/// verbatim as differential-test oracles: the batched parallel versions
/// must agree **bit-for-bit** for any community and thread count.
#[doc(hidden)]
pub mod naive {
    use super::*;

    /// Pair-by-pair MAE with a single running accumulator.
    pub fn trust_mae_with_truth(community: &Community, truth: &[f64]) -> f64 {
        assert_eq!(truth.len(), community.len(), "truth buffer size mismatch");
        let mut total = 0.0;
        let mut count = 0usize;
        for e in community.agent_ids() {
            for s in community.agent_ids() {
                if e == s {
                    continue;
                }
                let est = community.predict(e, s).p_honest;
                total += (est - truth[s.index()]).abs();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Per-evaluator sorted Mann–Whitney U count, one `predict` call per
    /// cell (the pre-batching implementation).
    pub fn rank_accuracy(community: &Community) -> f64 {
        let ids: Vec<PeerId> = community.agent_ids().collect();
        let honest: Vec<PeerId> = ids
            .iter()
            .copied()
            .filter(|a| community.is_honest(*a))
            .collect();
        let dishonest: Vec<PeerId> = ids
            .iter()
            .copied()
            .filter(|a| !community.is_honest(*a))
            .collect();
        if honest.is_empty() || dishonest.is_empty() {
            return 0.5;
        }
        let mut half_units: u64 = 0;
        let mut count: u64 = 0;
        let mut honest_scores: Vec<f64> = Vec::with_capacity(honest.len());
        for &e in &ids {
            honest_scores.clear();
            honest_scores.extend(
                honest
                    .iter()
                    .filter(|&&h| h != e)
                    .map(|&h| community.predict(e, h).p_honest),
            );
            if honest_scores.is_empty() {
                continue;
            }
            honest_scores.sort_unstable_by(f64::total_cmp);
            for &d in &dishonest {
                if d == e {
                    continue;
                }
                let pd = community.predict(e, d).p_honest;
                let below = honest_scores.partition_point(|&ph| ph.total_cmp(&pd).is_lt());
                let below_or_tied = honest_scores.partition_point(|&ph| ph.total_cmp(&pd).is_le());
                let wins = (honest_scores.len() - below_or_tied) as u64;
                let ties = (below_or_tied - below) as u64;
                half_units += 2 * wins + ties;
                count += honest_scores.len() as u64;
            }
        }
        if count == 0 {
            0.5
        } else {
            half_units as f64 / (2 * count) as f64
        }
    }

    /// Pair-by-pair thresholded classification walk.
    pub fn decision_accuracy(community: &Community) -> f64 {
        let ids: Vec<PeerId> = community.agent_ids().collect();
        let mut correct = 0usize;
        let mut count = 0usize;
        for &e in &ids {
            for &s in &ids {
                if e == s {
                    continue;
                }
                let predicted_honest = community.predict(e, s).p_honest >= 0.5;
                if predicted_honest == community.is_honest(s) {
                    correct += 1;
                }
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            correct as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::ModelKind;
    use trustex_agents::profile::PopulationMix;
    use trustex_netsim::rng::SimRng;
    use trustex_trust::model::Conduct;

    fn community(dishonest: f64) -> Community {
        community_with(dishonest, ModelKind::Beta, 10)
    }

    fn community_with(dishonest: f64, kind: ModelKind, n: usize) -> Community {
        let mut rng = SimRng::new(1);
        Community::new(n, &PopulationMix::standard(dishonest, 0.0), kind, &mut rng)
    }

    /// Feed every evaluator perfect direct experience about everyone.
    fn educate(c: &mut Community, reps: u64) {
        let ids: Vec<PeerId> = c.agent_ids().collect();
        for &e in &ids {
            for &s in &ids {
                if e == s {
                    continue;
                }
                let conduct = Conduct::from_honest(c.is_honest(s));
                for r in 0..reps {
                    c.record_direct(e, s, conduct, r);
                }
            }
        }
    }

    #[test]
    fn mae_decreases_with_evidence() {
        let mut c = community(0.5);
        let cold = trust_mae(&c);
        assert!((cold - 0.5).abs() < 1e-9, "uninformed prior is 0.5 off");
        educate(&mut c, 10);
        let warm = trust_mae(&c);
        assert!(warm < 0.2, "educated community MAE: {warm}");
    }

    #[test]
    fn rank_accuracy_perfect_after_education() {
        let mut c = community(0.5);
        assert!(
            (rank_accuracy(&c) - 0.5).abs() < 1e-9,
            "cold start is a coin flip"
        );
        educate(&mut c, 5);
        assert_eq!(rank_accuracy(&c), 1.0);
    }

    #[test]
    fn decision_accuracy_after_education() {
        let mut c = community(0.3);
        educate(&mut c, 10);
        assert!(decision_accuracy(&c) > 0.95);
    }

    /// The naive O(n³) pair walk — one step below even [`naive`]'s
    /// sorted formulation — as the ground-truth rank oracle.
    fn rank_accuracy_pair_walk(community: &Community) -> f64 {
        let ids: Vec<PeerId> = community.agent_ids().collect();
        let honest: Vec<PeerId> = ids
            .iter()
            .copied()
            .filter(|a| community.is_honest(*a))
            .collect();
        let dishonest: Vec<PeerId> = ids
            .iter()
            .copied()
            .filter(|a| !community.is_honest(*a))
            .collect();
        if honest.is_empty() || dishonest.is_empty() {
            return 0.5;
        }
        let mut score = 0.0;
        let mut count = 0usize;
        for &e in &ids {
            for &h in &honest {
                if h == e {
                    continue;
                }
                for &d in &dishonest {
                    if d == e {
                        continue;
                    }
                    let ph = community.predict(e, h).p_honest;
                    let pd = community.predict(e, d).p_honest;
                    score += if ph > pd {
                        1.0
                    } else if ph == pd {
                        0.5
                    } else {
                        0.0
                    };
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.5
        } else {
            score / count as f64
        }
    }

    /// Batched metrics must agree bit-for-bit with the retained naive
    /// walks (and rank with the O(n³) pair walk) on cold, partially
    /// educated and fully educated communities, for every model kind
    /// and several thread counts.
    #[test]
    fn batched_metrics_match_naive_reference() {
        for kind in ModelKind::ALL {
            for dishonest_frac in [0.3, 0.5, 0.7] {
                let mut c = community_with(dishonest_frac, kind, 12);
                let stages: [&dyn Fn(&mut Community); 3] = [
                    &|_| {},
                    &|c| {
                        // Partial education: some evaluators learn,
                        // leaving a mix of informative and cold rows.
                        let ids: Vec<PeerId> = c.agent_ids().collect();
                        for &e in ids.iter().take(4) {
                            for &s in &ids {
                                if e != s {
                                    let conduct = Conduct::from_honest(c.is_honest(s));
                                    c.record_direct(e, s, conduct, 0);
                                }
                            }
                        }
                    },
                    &|c| educate(c, 7),
                ];
                for stage in stages {
                    stage(&mut c);
                    let truth = cooperation_truth(&c);
                    let expected_mae = naive::trust_mae_with_truth(&c, &truth);
                    let expected_rank = naive::rank_accuracy(&c);
                    let expected_decision = naive::decision_accuracy(&c);
                    assert_eq!(expected_rank, rank_accuracy_pair_walk(&c), "{kind:?}");
                    for threads in [1usize, 2, 8] {
                        let m = accuracy_metrics(&c, &truth, threads);
                        assert_eq!(m.mae, expected_mae, "{kind:?} t={threads}");
                        assert_eq!(m.rank_accuracy, expected_rank, "{kind:?} t={threads}");
                        assert_eq!(
                            m.decision_accuracy, expected_decision,
                            "{kind:?} t={threads}"
                        );
                        assert_eq!(
                            trust_mae_with_truth_threads(&c, &truth, threads),
                            expected_mae,
                            "{kind:?} t={threads}"
                        );
                        assert_eq!(
                            rank_accuracy_threads(&c, threads),
                            expected_rank,
                            "{kind:?} t={threads}"
                        );
                        assert_eq!(
                            decision_accuracy_threads(&c, threads),
                            expected_decision,
                            "{kind:?} t={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trust_mae_with_truth_matches_allocating_path() {
        let mut c = community(0.4);
        educate(&mut c, 3);
        let truth = cooperation_truth(&c);
        assert_eq!(trust_mae(&c), trust_mae_with_truth(&c, &truth));
    }

    #[test]
    #[should_panic(expected = "truth buffer size mismatch")]
    fn trust_mae_with_wrong_buffer_panics() {
        let c = community(0.4);
        trust_mae_with_truth(&c, &[0.5; 3]);
    }

    #[test]
    #[should_panic(expected = "truth buffer size mismatch")]
    fn accuracy_metrics_with_wrong_buffer_panics() {
        let c = community(0.4);
        accuracy_metrics(&c, &[0.5; 3], 1);
    }

    #[test]
    fn degenerate_populations() {
        let c = community(0.0);
        assert_eq!(rank_accuracy(&c), 0.5, "no dishonest class");
        // Decision accuracy with the cold prior (0.5 ≥ 0.5 ⇒ honest)
        // is exactly the honest fraction.
        assert!((decision_accuracy(&c) - 1.0).abs() < 1e-9);
        let truth = cooperation_truth(&c);
        let m = accuracy_metrics(&c, &truth, 2);
        assert_eq!(m.rank_accuracy, 0.5);
        assert_eq!(m.mae, trust_mae(&c));
        assert_eq!(m.decision_accuracy, decision_accuracy(&c));
    }
}
