//! Payment policies: where within the admissible window the consumer's
//! outstanding balance is steered.
//!
//! The safety window gives a *range* of admissible outstanding payments
//! before each delivery; any point in it yields a valid schedule. The
//! choice distributes realized risk between the parties:
//!
//! * [`PaymentPolicy::Lazy`] keeps payments as late as possible —
//!   consumer-favouring (minimal consumer prepayment risk).
//! * [`PaymentPolicy::Eager`] pays as early as allowed —
//!   supplier-favouring.
//! * [`PaymentPolicy::Balanced`] steers to the midpoint, splitting the
//!   realized exposure between the parties.
//!
//! Experiment E10 ablates the three policies.

use crate::money::Money;
use serde::{Deserialize, Serialize};

/// Strategy for choosing the outstanding balance within `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PaymentPolicy {
    /// Pay the minimum required now (keep the outstanding balance high).
    #[default]
    Lazy,
    /// Pay the maximum allowed now (drive the outstanding balance low).
    Eager,
    /// Aim for the midpoint of the admissible range.
    Balanced,
}

impl PaymentPolicy {
    /// All policies, for ablation sweeps.
    pub const ALL: [PaymentPolicy; 3] = [
        PaymentPolicy::Lazy,
        PaymentPolicy::Eager,
        PaymentPolicy::Balanced,
    ];

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            PaymentPolicy::Lazy => "lazy",
            PaymentPolicy::Eager => "eager",
            PaymentPolicy::Balanced => "balanced",
        }
    }

    /// Chooses the post-payment outstanding balance within `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (callers must establish feasibility first).
    pub fn choose_outstanding(self, lo: Money, hi: Money) -> Money {
        assert!(lo <= hi, "empty payment window: lo={lo} hi={hi}");
        match self {
            PaymentPolicy::Lazy => hi,
            PaymentPolicy::Eager => lo,
            PaymentPolicy::Balanced => Money::from_micros((lo.as_micros() + hi.as_micros()) / 2),
        }
    }
}

impl std::fmt::Display for PaymentPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_keeps_high() {
        let lo = Money::from_units(1);
        let hi = Money::from_units(5);
        assert_eq!(PaymentPolicy::Lazy.choose_outstanding(lo, hi), hi);
    }

    #[test]
    fn eager_goes_low() {
        let lo = Money::from_units(1);
        let hi = Money::from_units(5);
        assert_eq!(PaymentPolicy::Eager.choose_outstanding(lo, hi), lo);
    }

    #[test]
    fn balanced_midpoint() {
        let lo = Money::from_units(1);
        let hi = Money::from_units(5);
        assert_eq!(
            PaymentPolicy::Balanced.choose_outstanding(lo, hi),
            Money::from_units(3)
        );
    }

    #[test]
    fn degenerate_window() {
        let x = Money::from_units(2);
        for p in PaymentPolicy::ALL {
            assert_eq!(p.choose_outstanding(x, x), x);
        }
    }

    #[test]
    fn balanced_midpoint_negative_lo() {
        let lo = Money::from_units(-3);
        let hi = Money::from_units(5);
        assert_eq!(
            PaymentPolicy::Balanced.choose_outstanding(lo, hi),
            Money::from_units(1)
        );
    }

    #[test]
    #[should_panic(expected = "empty payment window")]
    fn empty_window_panics() {
        PaymentPolicy::Lazy.choose_outstanding(Money::from_units(2), Money::from_units(1));
    }

    #[test]
    fn labels() {
        assert_eq!(PaymentPolicy::Lazy.to_string(), "lazy");
        assert_eq!(PaymentPolicy::default(), PaymentPolicy::Lazy);
        assert_eq!(PaymentPolicy::ALL.len(), 3);
    }
}
